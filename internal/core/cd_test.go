package core

import (
	"context"

	"math/rand"
	"reflect"
	"testing"

	"hypdb/internal/dag"
	"hypdb/internal/dataset"
	"hypdb/source/mem"
)

// colliderData samples Z → T ← W, T → Y with strong CPTs.
func colliderData(t *testing.T, n int, seed int64) (*dataset.Table, *dag.DAG) {
	t.Helper()
	g := dag.MustNew("Z", "W", "T", "Y")
	g.MustAddEdge("Z", "T")
	g.MustAddEdge("W", "T")
	g.MustAddEdge("T", "Y")
	bn, err := dag.NewBayesNet(g, []int{2, 2, 2, 2}, [][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
		{0.9, 0.1, 0.4, 0.6, 0.3, 0.7, 0.05, 0.95},
		{0.9, 0.1, 0.1, 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rand.New(rand.NewSource(seed)), n)
	if err != nil {
		t.Fatal(err)
	}
	return tab, g
}

// chainData samples A → T → Y (single parent: CD must fall back).
func chainData(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	g := dag.MustNew("A", "T", "Y")
	g.MustAddEdge("A", "T")
	g.MustAddEdge("T", "Y")
	bn, err := dag.NewBayesNet(g, []int{2, 2, 2}, [][]float64{
		{0.5, 0.5},
		{0.85, 0.15, 0.2, 0.8},
		{0.9, 0.1, 0.15, 0.85},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rand.New(rand.NewSource(seed)), n)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDiscoverCovariatesCollider(t *testing.T) {
	tab, _ := colliderData(t, 20000, 1)
	for _, method := range []TestMethod{ChiSquaredMethod, HyMITMethod} {
		cfg := Config{Method: method, Seed: 7}
		res, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"Z", "W"}, []string{"Y"}, cfg)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !reflect.DeepEqual(res.Parents, []string{"W", "Z"}) {
			t.Errorf("%v: Parents(T) = %v, want [W Z]", method, res.Parents)
		}
		if res.UsedFallback {
			t.Errorf("%v: fallback used despite two discoverable parents", method)
		}
		if res.Tests == 0 {
			t.Errorf("%v: no tests counted", method)
		}
	}
}

func TestDiscoverCovariatesColliderWithOutcomeCandidate(t *testing.T) {
	// Including the outcome among candidates must not pollute the parents:
	// children fail condition (a).
	tab, _ := colliderData(t, 20000, 2)
	res, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"Z", "W", "Y"}, []string{"Y"}, Config{Method: ChiSquaredMethod})
	if err != nil {
		t.Fatal(err)
	}
	if containsStr(res.Parents, "Y") {
		t.Errorf("outcome discovered as parent: %v", res.Parents)
	}
	if !containsStr(res.Parents, "Z") || !containsStr(res.Parents, "W") {
		t.Errorf("Parents(T) = %v, want Z and W", res.Parents)
	}
	if !containsStr(res.Boundary, "Y") {
		t.Errorf("MB(T) = %v missing the child Y", res.Boundary)
	}
}

func TestDiscoverCovariatesFallbackSingleParent(t *testing.T) {
	tab := chainData(t, 15000, 3)
	res, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"A", "Y"}, []string{"Y"}, Config{Method: ChiSquaredMethod})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedFallback {
		t.Error("single-parent case did not trigger the fallback")
	}
	if !reflect.DeepEqual(res.Parents, []string{"A"}) {
		t.Errorf("fallback covariates = %v, want [A] (MB(T) − outcomes)", res.Parents)
	}
}

func TestDiscoverCovariatesIndependentTreatment(t *testing.T) {
	// Randomized treatment: no boundary, no covariates, no fallback junk.
	rng := rand.New(rand.NewSource(4))
	b := dataset.NewBuilder("T", "N1", "N2")
	for i := 0; i < 5000; i++ {
		b.MustAdd(itoa(rng.Intn(2)), itoa(rng.Intn(3)), itoa(rng.Intn(2)))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"N1", "N2"}, nil, Config{Method: ChiSquaredMethod})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boundary) != 0 || len(res.Parents) != 0 {
		t.Errorf("independent treatment: MB=%v parents=%v, want empty", res.Boundary, res.Parents)
	}
}

func TestDiscoverCovariatesSpouseExcluded(t *testing.T) {
	// Z → T ← W plus spouse D of T via child C: T → C ← D. Phase II must
	// keep only Z, W.
	g := dag.MustNew("Z", "W", "T", "C", "D")
	g.MustAddEdge("Z", "T")
	g.MustAddEdge("W", "T")
	g.MustAddEdge("T", "C")
	g.MustAddEdge("D", "C")
	bn, err := dag.NewBayesNet(g, []int{2, 2, 2, 2, 2}, [][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
		{0.9, 0.1, 0.4, 0.6, 0.3, 0.7, 0.05, 0.95},
		{0.9, 0.1, 0.45, 0.55, 0.35, 0.65, 0.05, 0.95},
		{0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rand.New(rand.NewSource(5)), 30000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"Z", "W", "C", "D"}, nil, Config{Method: ChiSquaredMethod})
	if err != nil {
		t.Fatal(err)
	}
	if containsStr(res.Parents, "D") || containsStr(res.Parents, "C") {
		t.Errorf("non-parent in covariates: %v", res.Parents)
	}
	if !containsStr(res.Parents, "Z") || !containsStr(res.Parents, "W") {
		t.Errorf("Parents(T) = %v, want Z and W", res.Parents)
	}
}

func TestDiscoverCovariatesMaterializationMatchesScan(t *testing.T) {
	tab, _ := colliderData(t, 10000, 6)
	base := Config{Method: ChiSquaredMethod}
	noMat := base
	noMat.DisableMaterialization = true
	noCache := base
	noCache.DisableEntropyCache = true
	r1, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"Z", "W"}, []string{"Y"}, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"Z", "W"}, []string{"Y"}, noMat)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"Z", "W"}, []string{"Y"}, noCache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Parents, r2.Parents) || !reflect.DeepEqual(r1.Parents, r3.Parents) {
		t.Errorf("optimizations changed the answer: %v vs %v vs %v", r1.Parents, r2.Parents, r3.Parents)
	}
}

func TestDiscoverCovariatesMaxCondSet(t *testing.T) {
	tab, _ := colliderData(t, 5000, 7)
	res, err := DiscoverCovariates(context.Background(), mem.New(tab), "T", []string{"Z", "W"}, []string{"Y"},
		Config{Method: ChiSquaredMethod, MaxCondSet: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parents) == 0 {
		t.Error("capped CD found nothing on an easy instance")
	}
}

func TestDiscoverCovariatesValidation(t *testing.T) {
	tab, _ := colliderData(t, 100, 8)
	if _, err := DiscoverCovariates(context.Background(), mem.New(tab), "missing", []string{"Z"}, nil, Config{}); err == nil {
		t.Error("missing target accepted")
	}
}

func itoa(v int) string { return string(rune('0' + v)) }
