// Command hypdb detects, explains and removes bias in OLAP queries over CSV
// data — the interactive front end of the library.
//
// Usage:
//
//	hypdb analyze  -data file.csv -treatment T -outcomes Y1,Y2 [-groupby X1,X2] [-where "A=v1|v2;B=w"] [flags]
//	hypdb audit    -data file.csv [-treatments T1,T2] [-outcomes Y1] [-where ...] [-min-support N] [-top K] [flags]
//	hypdb detect   -data file.csv -treatment T -outcomes Y -covariates Z1,Z2 [...]
//	hypdb rewrite  -data file.csv -treatment T -outcomes Y -covariates Z1,Z2 [-mediators M1] [...]
//	hypdb generate -dataset flight|adult|berkeley|staples|cancer [-rows N] [-seed S] -out file.csv
//	hypdb datasets
//
// analyze asks "is THIS query biased?"; audit asks "which queries over this
// data are biased?" — it sweeps every eligible (treatment, outcome)
// attribute pair and prints the biased ones as a ranked table, sharing one
// covariate discovery per treatment across the whole sweep.
//
// The -where syntax is a conjunction of attribute filters separated by ';',
// each "Attr=v1|v2|v3" (any listed value matches). Interrupting a run
// (Ctrl-C) cancels the analysis context and exits promptly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"hypdb"
	"hypdb/internal/datagen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// One cancellable context for the whole run: Ctrl-C aborts mid-flight
	// permutation loops and discovery searches.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(ctx, os.Args[2:], false, false)
	case "audit":
		err = cmdAudit(ctx, os.Args[2:])
	case "detect":
		err = cmdAnalyze(ctx, os.Args[2:], true, false)
	case "rewrite":
		err = cmdAnalyze(ctx, os.Args[2:], false, true)
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "datasets":
		for _, g := range datagen.Generators() {
			fmt.Printf("%-10s %8d rows  %s\n", g.Name, g.DefaultRows, g.Description)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hypdb: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "hypdb: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "hypdb: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hypdb analyze  -data file.csv -treatment T -outcomes Y[,Y2] [-groupby X] [-where "A=v1|v2;B=w"] [-alpha 0.01] [-method hymit|chi2|mit|mit-sampling] [-seed N]
  hypdb audit    -data file.csv [-treatments T1,T2] [-outcomes Y1,Y2] [-where ...] [-min-support N] [-max-treatment-card N] [-top K] [-workers N] [-alpha] [-method] [-seed]
  hypdb detect   like analyze, but requires -covariates and only reports the bias verdict
  hypdb rewrite  like analyze, but uses the given -covariates/-mediators instead of discovery
  hypdb generate -dataset name [-rows N] [-seed N] -out file.csv
  hypdb datasets`)
}

func cmdAnalyze(ctx context.Context, args []string, detectOnly, rewriteOnly bool) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	data := fs.String("data", "", "CSV file to analyze (required)")
	treatment := fs.String("treatment", "", "treatment attribute T (required)")
	outcomes := fs.String("outcomes", "", "comma-separated outcome attributes (required)")
	groupby := fs.String("groupby", "", "comma-separated extra grouping attributes")
	where := fs.String("where", "", `WHERE filters: "Attr=v1|v2;Other=w"`)
	covariates := fs.String("covariates", "", "comma-separated covariates (skips discovery)")
	mediators := fs.String("mediators", "", "comma-separated mediators (skips discovery)")
	alpha := fs.Float64("alpha", 0, "significance level (default 0.01)")
	method := fs.String("method", "hymit", "independence test: hymit, chi2, mit, mit-sampling")
	seed := fs.Int64("seed", 1, "random seed")
	perms := fs.Int("permutations", 0, "Monte-Carlo permutations (default 1000)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *treatment == "" || *outcomes == "" {
		return fmt.Errorf("-data, -treatment and -outcomes are required")
	}
	db, err := hypdb.OpenCSV(*data)
	if err != nil {
		return err
	}
	pred, err := parseWhere(*where)
	if err != nil {
		return err
	}
	q := hypdb.Query{
		Table:     *data,
		Treatment: *treatment,
		Outcomes:  splitList(*outcomes),
		Groupings: splitList(*groupby),
		Where:     pred,
	}
	opts := []hypdb.Option{
		hypdb.WithAlpha(*alpha),
		hypdb.WithSeed(*seed),
		hypdb.WithPermutations(*perms),
		hypdb.WithParallel(true),
	}
	switch *method {
	case "hymit":
		opts = append(opts, hypdb.WithMethod(hypdb.HyMIT))
	case "chi2":
		opts = append(opts, hypdb.WithMethod(hypdb.ChiSquared))
	case "mit":
		opts = append(opts, hypdb.WithMethod(hypdb.MIT))
	case "mit-sampling":
		opts = append(opts, hypdb.WithMethod(hypdb.MITSampling))
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	covs := splitList(*covariates)
	meds := splitList(*mediators)
	if len(covs) > 0 {
		opts = append(opts, hypdb.WithCovariates(covs...))
	}
	if len(meds) > 0 {
		opts = append(opts, hypdb.WithMediators(meds...))
	}
	if detectOnly && len(covs) == 0 {
		return fmt.Errorf("detect requires -covariates")
	}
	if rewriteOnly && len(covs) == 0 && len(meds) == 0 {
		return fmt.Errorf("rewrite requires -covariates and/or -mediators")
	}

	if detectOnly {
		view, err := q.View(ctx, db.Relation())
		if err != nil {
			return err
		}
		results, err := hypdb.OpenSource(view).DetectBias(ctx, q.Treatment, q.Groupings, covs, opts...)
		if err != nil {
			return err
		}
		for _, b := range results {
			tag := "UNBIASED"
			if b.Biased {
				tag = "BIASED"
			}
			cx := ""
			if len(b.Context) > 0 {
				cx = " [" + strings.Join(b.Context, ",") + "]"
			}
			fmt.Printf("context%s: I(T;V)=%.5f p=%.4f → %s\n", cx, b.MI, b.PValue, tag)
		}
		return nil
	}
	rep, err := db.Analyze(ctx, q, opts...)
	if err != nil {
		return err
	}
	return rep.WriteText(os.Stdout)
}

// cmdAudit sweeps the whole (treatment, outcome) query lattice of a CSV
// file and prints the biased queries as a ranked table.
func cmdAudit(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	data := fs.String("data", "", "CSV file to audit (required)")
	treatments := fs.String("treatments", "", "comma-separated treatment candidates (default: every eligible attribute)")
	outcomes := fs.String("outcomes", "", "comma-separated outcome candidates (default: every numeric attribute)")
	where := fs.String("where", "", `audit population filter: "Attr=v1|v2;Other=w"`)
	minSupport := fs.Int("min-support", 0, "minimum rows per compared treatment group (default 50)")
	maxTreatCard := fs.Int("max-treatment-card", 0, "widest treatment attribute swept (default 10)")
	maxOutCard := fs.Int("max-outcome-card", 0, "widest outcome attribute swept (default 24)")
	topK := fs.Int("top", 0, "cap the ranked findings list (0 = all)")
	workers := fs.Int("workers", 0, "sweep worker pool size (default GOMAXPROCS)")
	alpha := fs.Float64("alpha", 0, "significance level (default 0.01)")
	method := fs.String("method", "hymit", "independence test: hymit, chi2, mit, mit-sampling")
	seed := fs.Int64("seed", 1, "random seed")
	perms := fs.Int("permutations", 0, "Monte-Carlo permutations (default 1000)")
	explainPlan := fs.Bool("explain-plan", false, "after the sweep, dump the batch planner's cuboid plan")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	db, err := hypdb.OpenCSV(*data)
	if err != nil {
		return err
	}
	pred, err := parseWhere(*where)
	if err != nil {
		return err
	}
	opts := []hypdb.Option{
		hypdb.WithAlpha(*alpha),
		hypdb.WithSeed(*seed),
		hypdb.WithPermutations(*perms),
		hypdb.WithParallel(true),
		hypdb.WithAuditWorkers(*workers),
		hypdb.WithMinSupport(*minSupport),
	}
	switch *method {
	case "hymit":
		opts = append(opts, hypdb.WithMethod(hypdb.HyMIT))
	case "chi2":
		opts = append(opts, hypdb.WithMethod(hypdb.ChiSquared))
	case "mit":
		opts = append(opts, hypdb.WithMethod(hypdb.MIT))
	case "mit-sampling":
		opts = append(opts, hypdb.WithMethod(hypdb.MITSampling))
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	rep, err := db.Audit(ctx, hypdb.AuditSpec{
		Treatments:       splitList(*treatments),
		Outcomes:         splitList(*outcomes),
		Where:            pred,
		MaxTreatmentCard: *maxTreatCard,
		MaxOutcomeCard:   *maxOutCard,
		TopK:             *topK,
	}, opts...)
	if err != nil {
		return err
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if *explainPlan {
		if p := db.LastPlan(); p != nil {
			fmt.Println()
			return p.WriteText(os.Stdout)
		}
		fmt.Println("\nno batch plan was executed (planner skipped or demand unplannable)")
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	name := fs.String("dataset", "", "dataset name (see `hypdb datasets`)")
	rows := fs.Int("rows", 0, "row count (0 = dataset default)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output CSV path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *out == "" {
		return fmt.Errorf("-dataset and -out are required")
	}
	gen, err := datagen.Lookup(*name)
	if err != nil {
		return err
	}
	n := *rows
	if n <= 0 {
		n = gen.DefaultRows
	}
	tab, err := gen.Generate(n, *seed)
	if err != nil {
		return err
	}
	if err := tab.WriteCSVFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows × %d columns to %s\n", tab.NumRows(), tab.NumCols(), *out)
	return nil
}

// parseWhere parses "A=v1|v2;B=w" into a conjunction of In predicates.
func parseWhere(s string) (hypdb.Predicate, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var conj hypdb.And
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		attr, vals, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -where clause %q (want Attr=v1|v2)", part)
		}
		values := strings.Split(vals, "|")
		for i := range values {
			values[i] = strings.TrimSpace(values[i])
		}
		conj = append(conj, hypdb.In{Attr: strings.TrimSpace(attr), Values: values})
	}
	if len(conj) == 0 {
		return nil, nil
	}
	return conj, nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
