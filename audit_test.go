package hypdb_test

import (
	"context"
	"reflect"
	"testing"

	"hypdb"
	"hypdb/internal/datagen"
)

// TestAuditBerkeley is the acceptance scenario: sweeping the 1973 Berkeley
// admissions data must flag (Gender → Accepted) as biased, with Department
// among the responsible covariates and the adjustment reversing the naive
// gap — the paper's Fig 3 conclusion, reached without the analyst naming a
// single query.
func TestAuditBerkeley(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	db := hypdb.Open(tab)
	rep, err := db.Audit(context.Background(), hypdb.AuditSpec{},
		hypdb.WithSeed(1), hypdb.WithPermutations(200))
	if err != nil {
		t.Fatal(err)
	}

	var ga *hypdb.AuditFinding
	for i := range rep.Findings {
		if rep.Findings[i].Treatment == "Gender" && rep.Findings[i].Outcome == "Accepted" {
			ga = &rep.Findings[i]
		}
	}
	if ga == nil {
		t.Fatalf("Gender→Accepted not flagged; findings %+v, unbiased %+v, pruned %+v",
			rep.Findings, rep.Unbiased, rep.Pruned)
	}
	// Department must be in the adjustment sets (as covariate or — the
	// causally faithful reading of Berkeley — as mediator) and in the
	// responsible set the explanation ranks.
	deptAdj, deptResp := false, false
	for _, c := range append(append([]string(nil), ga.Covariates...), ga.Mediators...) {
		if c == "Department" {
			deptAdj = true
		}
	}
	for _, r := range ga.Responsible {
		if r.Attr == "Department" {
			deptResp = true
		}
	}
	if !deptAdj || !deptResp {
		t.Errorf("Department missing from adjustment sets (Z=%v, M=%v) or responsible set (%+v)",
			ga.Covariates, ga.Mediators, ga.Responsible)
	}
	// The naive gap favors men; adjusting for department erases (indeed
	// slightly reverses) it.
	if ga.OriginalDiff <= 0 {
		t.Errorf("naive Male−Female acceptance gap = %+.4f, want > 0", ga.OriginalDiff)
	}
	if !ga.HasAdjusted {
		t.Fatalf("no adjusted estimate: %+v", ga)
	}
	if ga.AdjustedDiff >= ga.OriginalDiff {
		t.Errorf("adjustment did not shrink the gap: %+.4f → %+.4f", ga.OriginalDiff, ga.AdjustedDiff)
	}
	if !ga.Reversed {
		t.Errorf("Berkeley adjustment should reverse the gap: %+.4f → %+.4f",
			ga.OriginalDiff, ga.AdjustedDiff)
	}
}

// TestAuditDeterminism: one seed, one ranked report — regardless of worker
// parallelism and run order.
func TestAuditDeterminism(t *testing.T) {
	tab, _, err := datagen.Random(datagen.RandomSpec{
		Nodes: 6, AvgDegree: 2, MinCard: 2, MaxCard: 3, Alpha: 0.3, Rows: 3000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *hypdb.AuditReport {
		db := hypdb.Open(tab) // fresh handle: no cross-run cache reuse
		rep, err := db.Audit(context.Background(), hypdb.AuditSpec{MinSupport: 20},
			hypdb.WithSeed(3), hypdb.WithPermutations(100), hypdb.WithAuditWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		rep.Elapsed = 0 // wall-clock is the one legitimately varying field
		return rep
	}
	serial := run(1)
	for i := 0; i < 3; i++ {
		if parallel := run(4); !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("audit reports diverge across runs/workers:\nserial:   %+v\nparallel: %+v", serial, parallel)
		}
	}
	if serial.Candidates == 0 || serial.Evaluated == 0 {
		t.Fatalf("vacuous determinism check: %+v", serial)
	}
}

// TestAuditOptionThresholds: WithMinSupport is honored (and loses to an
// explicit spec value).
func TestAuditOptionThresholds(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	db := hypdb.Open(tab)
	// Every gender/department group is < 2000, so everything prunes.
	rep, err := db.Audit(context.Background(), hypdb.AuditSpec{}, hypdb.WithMinSupport(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 0 || len(rep.Pruned) != rep.Candidates {
		t.Errorf("WithMinSupport ignored: evaluated %d, pruned %d of %d",
			rep.Evaluated, len(rep.Pruned), rep.Candidates)
	}
	// An explicit spec threshold wins over the option.
	rep2, err := db.Audit(context.Background(), hypdb.AuditSpec{MinSupport: 10},
		hypdb.WithMinSupport(1<<20), hypdb.WithSeed(1), hypdb.WithPermutations(100))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Evaluated == 0 {
		t.Errorf("spec.MinSupport=10 should evaluate candidates, got none (pruned %d)", len(rep2.Pruned))
	}
}

// TestAuditSharesSessionCD: an Audit sweep reuses the session's memoized
// covariate discoveries — one compute per treatment, hits for every
// additional candidate and for repeated sweeps.
func TestAuditSharesSessionCD(t *testing.T) {
	tab, _, err := datagen.Random(datagen.RandomSpec{
		Nodes: 5, AvgDegree: 2, MinCard: 2, MaxCard: 2, Alpha: 0.3, Rows: 2000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := hypdb.Open(tab)
	spec := hypdb.AuditSpec{MinSupport: 10}
	opts := []hypdb.Option{hypdb.WithSeed(2), hypdb.WithMethod(hypdb.ChiSquared)}

	rep, err := db.Audit(context.Background(), spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.CDComputes == 0 {
		t.Fatal("sweep ran no covariate discoveries — vacuous")
	}
	// One discovery per treatment plus at most one mediator discovery per
	// outcome — never one per candidate pair.
	if max := len(rep.Treatments) + len(rep.Outcomes); st.CDComputes > max {
		t.Errorf("%d CD computes for %d treatments + %d outcomes: discoveries not shared within the sweep",
			st.CDComputes, len(rep.Treatments), len(rep.Outcomes))
	}
	if _, err := db.Audit(context.Background(), spec, opts...); err != nil {
		t.Fatal(err)
	}
	st2 := db.Stats()
	if st2.CDComputes != st.CDComputes {
		t.Errorf("second sweep recomputed discoveries: %d → %d computes", st.CDComputes, st2.CDComputes)
	}
	if st2.CDHits <= st.CDHits {
		t.Errorf("second sweep produced no cache hits: %+v → %+v", st, st2)
	}
}
