package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestReplayDeleteCancelsHistory(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	recs := []Record{
		{Op: OpCreate, Name: "a", Kind: KindCSV, CSVFile: "csv/a-1.csv"},
		{Op: OpAppend, Name: "a", Rows: [][]string{{"x", "y"}}},
		{Op: OpCreate, Name: "b", Kind: KindSQL, Driver: "memsql", DSN: "dsn", SQLTable: "t"},
		{Op: OpDelete, Name: "a"},
		{Op: OpCreate, Name: "a", Kind: KindRemote, Peers: []string{"http://p1"}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	live, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 2 {
		t.Fatalf("live = %d records, want 2 (delete cancels a's first life)", len(live))
	}
	if live[0].Name != "b" || live[0].Kind != KindSQL {
		t.Fatalf("live[0] = %+v, want b/sql", live[0])
	}
	if live[1].Name != "a" || live[1].Kind != KindRemote || live[1].Peers[0] != "http://p1" {
		t.Fatalf("live[1] = %+v, want a's second life as remote", live[1])
	}
}

func TestReplaySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	if err := j.Append(Record{Op: OpCreate, Name: "d", Kind: KindCSV, Shards: 4, CSVFile: "csv/d-1.csv"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, dir)
	live, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0].Name != "d" || live[0].Shards != 4 {
		t.Fatalf("live = %+v, want the create back after reopen", live)
	}
}

func TestSpillCSVRoundTrip(t *testing.T) {
	j := openT(t, t.TempDir())
	body := "city,crime\nSF,high\nNY,low\n"
	file, err := j.SpillCSV("crime", body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(file, "csv/") {
		t.Fatalf("spill path %q not under csv/", file)
	}
	got, err := j.ReadCSV(file)
	if err != nil {
		t.Fatal(err)
	}
	if got != body {
		t.Fatalf("round trip lost bytes: %q != %q", got, body)
	}

	// Two spills for the same name must not collide.
	file2, err := j.SpillCSV("crime", "other")
	if err != nil {
		t.Fatal(err)
	}
	if file2 == file {
		t.Fatalf("second spill reused %q", file)
	}
}

func TestTornTailIgnoredMidCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	if err := j.Append(Record{Op: OpCreate, Name: "ok", Kind: KindCSV, CSVFile: "csv/ok.csv"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal.jsonl")

	// A torn final line (crash mid-write, never acknowledged) is dropped.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"create","na`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	live, err := j.Replay()
	if err != nil {
		t.Fatalf("torn tail should be ignored, got %v", err)
	}
	if len(live) != 1 || live[0].Name != "ok" {
		t.Fatalf("live = %+v, want just the acknowledged create", live)
	}

	// Corruption followed by more records is not a torn tail — fail loudly
	// rather than silently forgetting an acknowledged registration.
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n{\"op\":\"create\",\"name\":\"later\",\"kind\":\"csv\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := j.Replay(); err == nil {
		t.Fatal("mid-journal corruption should be an error")
	}
}

func TestCompactDropsDeadRecordsAndOrphanSpills(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)

	deadFile, err := j.SpillCSV("dead", "a,b\n1,2\n")
	if err != nil {
		t.Fatal(err)
	}
	liveFile, err := j.SpillCSV("live", "c,d\n3,4\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Record{
		{Op: OpCreate, Name: "dead", Kind: KindCSV, CSVFile: deadFile},
		{Op: OpCreate, Name: "live", Kind: KindCSV, CSVFile: liveFile},
		{Op: OpAppend, Name: "live", Rows: [][]string{{"5", "6"}}},
		{Op: OpDelete, Name: "dead"},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	live, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 2 || live[0].Name != "live" || live[1].Op != OpAppend {
		t.Fatalf("after compact live = %+v, want live's create+append only", live)
	}
	if _, err := os.Stat(filepath.Join(dir, deadFile)); !os.IsNotExist(err) {
		t.Fatalf("orphan spill %s survived compaction (err=%v)", deadFile, err)
	}
	if _, err := j.ReadCSV(liveFile); err != nil {
		t.Fatalf("live spill lost in compaction: %v", err)
	}

	// The journal must still accept appends through the re-pointed handle.
	if err := j.Append(Record{Op: OpDelete, Name: "live"}); err != nil {
		t.Fatal(err)
	}
	live, err = j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("post-compact delete not visible: %+v", live)
	}
}
