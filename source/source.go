// Package source defines the storage contract of HypDB: the narrow
// interface the analysis engine needs from a backing store in order to
// detect, explain and remove bias in OLAP queries.
//
// The paper positions HypDB as middleware on top of an OLAP DBMS — all of
// its sufficient statistics (contingency tables, group-by counts,
// conditional mutual information) are computable from aggregate COUNT
// queries against the database. Relation captures exactly that: a schema,
// a row count, per-attribute dictionaries, and dictionary-coded group-by
// Counts under a predicate. Everything else in the engine — entropy
// estimation, the MIT permutation test over contingency tables, covariate
// discovery, bias detection, explanation ranking and query rewriting — is
// derived from those counts.
//
// Two backends ship with HypDB:
//
//   - source/mem wraps the in-memory columnar dataset.Table (zero behavior
//     change relative to the original table-bound pipeline), and
//   - source/sqldb speaks to any database/sql driver, pushing
//     SELECT ..., COUNT(*) ... GROUP BY aggregation down to the database
//     and caching per-handle counts.
//
// A few analysis paths genuinely need raw rows (the naive shuffle
// permutation test, key-attribute detection by subsampling). Backends that
// can produce rows implement the optional Materializer capability; the
// Materialize helper returns hyperr.ErrNeedsMaterialization (re-exported as
// hypdb.ErrNeedsMaterialization) for counts-only relations, so row-level
// paths fail loudly instead of silently degrading.
package source

import (
	"context"
	"fmt"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
)

// Predicate filters rows: the WHERE condition of the paper's queries. It is
// the same predicate type the public hypdb package exposes; backends either
// evaluate it in memory (mem) or render it to SQL via its SQL() method
// (sqldb).
type Predicate = dataset.Predicate

// Key is a dictionary-coded composite group-by key: 4 little-endian bytes
// per attribute, in the attribute order of the Counts call that produced
// it. Use Key.Codes, Key.Field and Key.Slice to take it apart and
// dataset.EncodeKey to build one.
type Key = dataset.GroupKey

// Relation is the data contract of the HypDB engine: a named relation of
// categorical attributes that can answer dictionary-coded group-by counts.
//
// Dictionaries are per-handle and immutable: Labels(attr) returns the
// code→label mapping, and every code appearing in a Counts result indexes
// into that same slice for the lifetime of the handle. Restrict returns a
// new relation over the selected subpopulation with fresh (compacted)
// dictionaries — exactly how the engine scopes an analysis to a query's
// WHERE view.
//
// Implementations must be safe for concurrent use: the engine issues
// overlapping Counts calls from worker pools.
type Relation interface {
	// Name is the display name of the relation (used when rendering SQL).
	Name() string

	// Backend returns a stable identity string for this relation's backing
	// store and restriction. Two relations with different Backend() values
	// must never share cached statistics; session caches incorporate it
	// into their keys.
	Backend() string

	// Attributes returns the column names in schema order.
	Attributes() []string

	// HasAttribute reports whether the named attribute exists.
	HasAttribute(name string) bool

	// NumRows returns the number of rows (the paper's n).
	NumRows(ctx context.Context) (int, error)

	// Labels returns the dictionary of attr: a slice mapping each code to
	// its string label. Callers must not mutate the returned slice. The
	// dictionary covers the relation's active domain; its length is the
	// attribute's cardinality.
	Labels(ctx context.Context, attr string) ([]string, error)

	// Counts returns the frequency of each composite value of attrs among
	// the rows matching where (all rows when where is nil), keyed by the
	// dictionary codes of the attributes in call order. An empty attrs
	// yields a single empty key holding the matching-row count. Callers
	// must not mutate the returned map: backends and caching layers are
	// free to hand out one shared memoized result.
	Counts(ctx context.Context, attrs []string, where Predicate) (map[Key]int, error)

	// Restrict returns σ_where(R): a new relation over the matching rows
	// with compacted dictionaries. A nil predicate returns the relation
	// itself.
	Restrict(ctx context.Context, where Predicate) (Relation, error)
}

// DenseCounter is the optional dense-counts capability: backends that can
// tabulate (or convert) group-by counts into the flat mixed-radix
// dataset.DenseCounts form implement it, letting the engine skip the sparse
// map representation entirely. Implementations return (nil, nil) when the
// cell space ∏ Card(attr) exceeds budget (≤ 0 meaning
// dataset.DefaultCellBudget); callers then fall back to Counts.
type DenseCounter interface {
	DenseCounts(ctx context.Context, attrs []string, where Predicate, budget int) (*dataset.DenseCounts, error)
}

// Dense returns the dense tabulation of rel's group-by counts over attrs
// under where, or (nil, nil) when the cell space exceeds budget (≤ 0 meaning
// dataset.DefaultCellBudget). Backends implementing DenseCounter answer
// directly; for the rest the sparse Counts result is folded into a dense
// view using the per-attribute dictionaries — still one backend round trip.
func Dense(ctx context.Context, rel Relation, attrs []string, where Predicate, budget int) (*dataset.DenseCounts, error) {
	if dc, ok := rel.(DenseCounter); ok {
		return dc.DenseCounts(ctx, attrs, where, budget)
	}
	cards := make([]int, len(attrs))
	for i, a := range attrs {
		card, err := Card(ctx, rel, a)
		if err != nil {
			return nil, err
		}
		cards[i] = card
	}
	rows, err := rel.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	if _, ok := dataset.DenseSize(cards, dataset.EffectiveBudget(budget, rows)); !ok {
		return nil, nil
	}
	counts, err := rel.Counts(ctx, attrs, where)
	if err != nil {
		return nil, err
	}
	dc, err := dataset.NewDenseCounts(attrs, cards)
	if err != nil {
		return nil, err
	}
	for k, c := range counts {
		if err := dc.AddKey(k, c); err != nil {
			return nil, fmt.Errorf("source: relation %q: %v", rel.Name(), err)
		}
	}
	return dc, nil
}

// Materializer is the optional row-level capability: backends that can
// produce the underlying rows implement it, enabling analysis paths that
// genuinely need raw data (the naive shuffle permutation test, subsample
// key detection). Materialize may be expensive for remote backends; the
// engine calls it only on those paths.
type Materializer interface {
	// Materialize returns the relation's rows as an in-memory table whose
	// column dictionaries agree with the relation's Labels.
	Materialize(ctx context.Context) (*dataset.Table, error)
}

// Closer is the optional teardown capability: backends holding external
// resources (database connections, prepared statements) implement it.
// Close must be safe to call more than once.
type Closer interface {
	Close() error
}

// Materialize returns rel's rows as an in-memory table when the backend
// supports row-level access, and an error wrapping
// hyperr.ErrNeedsMaterialization otherwise.
func Materialize(ctx context.Context, rel Relation) (*dataset.Table, error) {
	if m, ok := rel.(Materializer); ok {
		return m.Materialize(ctx)
	}
	return nil, fmt.Errorf("source: relation %q (backend %s) is counts-only: %w",
		rel.Name(), rel.Backend(), hyperr.ErrNeedsMaterialization)
}

// Card returns the cardinality (dictionary size) of attr. Backends that
// can count distinct values without materializing the dictionary expose
// the optional Cardinality capability, which is preferred.
func Card(ctx context.Context, rel Relation, attr string) (int, error) {
	if c, ok := rel.(interface {
		Cardinality(ctx context.Context, attr string) (int, error)
	}); ok {
		return c.Cardinality(ctx, attr)
	}
	labels, err := rel.Labels(ctx, attr)
	if err != nil {
		return 0, err
	}
	return len(labels), nil
}

// CheckAttrs verifies that every named attribute exists on rel, wrapping
// hyperr.ErrUnknownAttribute for the first missing one.
func CheckAttrs(rel Relation, attrs ...string) error {
	for _, a := range attrs {
		if !rel.HasAttribute(a) {
			return fmt.Errorf("source: relation %q has no attribute %q: %w", rel.Name(), a, hyperr.ErrUnknownAttribute)
		}
	}
	return nil
}

// countsOnly strips the Materializer capability off a relation, leaving
// the pure counts contract. Close is forwarded so resource-holding
// backends are still released through the wrapper, and DenseCounts is
// forwarded so wrapping a dense-capable backend does not silently demote
// source.Dense to the generic sparse-fold path.
type countsOnly struct {
	Relation
}

// CountsOnly returns a view of rel that hides row-level access: paths that
// need raw rows fail with ErrNeedsMaterialization. It is how tests — and
// deployments that must never pull raw rows out of a store — enforce the
// aggregate-only contract. The Closer, DenseCounter and Cardinality
// capabilities are preserved: counts-only means no rows, not slow counts.
func CountsOnly(rel Relation) Relation {
	return countsOnly{Relation: rel}
}

// Close implements Closer by forwarding to the wrapped relation (a no-op
// when the backend holds no resources).
func (c countsOnly) Close() error {
	if cl, ok := c.Relation.(Closer); ok {
		return cl.Close()
	}
	return nil
}

// DenseCounts implements DenseCounter by probing the wrapped relation,
// falling back to folding the sparse Counts result when the backend has no
// dense path of its own.
func (c countsOnly) DenseCounts(ctx context.Context, attrs []string, where Predicate, budget int) (*dataset.DenseCounts, error) {
	return Dense(ctx, c.Relation, attrs, where, budget)
}

// Cardinality forwards the optional distinct-count capability.
func (c countsOnly) Cardinality(ctx context.Context, attr string) (int, error) {
	return Card(ctx, c.Relation, attr)
}

// Restrict keeps the counts-only guarantee across restriction.
func (c countsOnly) Restrict(ctx context.Context, where Predicate) (Relation, error) {
	r, err := c.Relation.Restrict(ctx, where)
	if err != nil {
		return nil, err
	}
	if r == c.Relation {
		return c, nil
	}
	return countsOnly{Relation: r}, nil
}

// ---------------------------------------------------------------------------
// Streaming ingestion and versioned snapshots

// AppendResult describes one successful Append: how many rows landed, the
// relation's new totals, and a counts view over just the appended rows so
// caching layers can patch primed statistics instead of discarding them.
type AppendResult struct {
	// Appended is the number of rows this call added.
	Appended int
	// NumRows is the relation's total row count after the append.
	NumRows int
	// Version is the relation's snapshot version after the append.
	Version uint64
	// Delta is a read-only relation over exactly the appended rows, coded
	// in the parent relation's (post-append) global dictionaries — its
	// Counts/DenseCounts are additive deltas for any cached view of the
	// previous version.
	Delta Relation
}

// Appender is the optional streaming-ingestion capability: relations that
// can grow by whole rows implement it. Append must be safe for concurrent
// use with readers; each call produces a new snapshot version.
type Appender interface {
	Append(ctx context.Context, rows [][]string) (*AppendResult, error)
}

// Versioned is the optional snapshot capability of mutable relations.
// Readers that must not observe concurrent appends take a Snapshot — an
// immutable view of one version — and work against it; caching layers tag
// entries with the version they were computed at so no analysis ever mixes
// epochs.
type Versioned interface {
	// SnapshotVersion returns the current version. It starts at 1 and
	// increases with every successful Append.
	SnapshotVersion() uint64
	// Snapshot returns an immutable view of the current version together
	// with that version number. The view's Backend identity incorporates
	// the version, so statistics cached against it can never be shared
	// across epochs.
	Snapshot() (Relation, uint64)
}
