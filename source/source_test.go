package source_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
	"hypdb/source/mem"
)

func fixture(t *testing.T) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("T", "A", "B")
	for _, r := range [][3]string{
		{"0", "x", "u"}, {"0", "x", "v"}, {"0", "y", "u"},
		{"1", "x", "u"}, {"1", "y", "v"}, {"1", "y", "v"},
	} {
		b.MustAdd(r[0], r[1], r[2])
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestKeyCodec(t *testing.T) {
	k := dataset.EncodeKey(3, 0, 70000)
	if k.Fields() != 3 {
		t.Fatalf("Fields = %d", k.Fields())
	}
	if got := k.Codes(); !reflect.DeepEqual(got, []int32{3, 0, 70000}) {
		t.Fatalf("Codes = %v", got)
	}
	if k.Field(2) != 70000 {
		t.Fatalf("Field(2) = %d", k.Field(2))
	}
	if got := k.Slice(1, 3).Codes(); !reflect.DeepEqual(got, []int32{0, 70000}) {
		t.Fatalf("Slice(1,3) = %v", got)
	}
}

func TestWithCompositeCounts(t *testing.T) {
	ctx := context.Background()
	rel := mem.New(fixture(t))
	comp, err := source.WithComposite(rel, "__joint", []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.HasAttribute("__joint") || !comp.HasAttribute("A") {
		t.Fatal("composite schema missing attributes")
	}

	labels, err := comp.Labels(ctx, "__joint")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct (A,B) combinations present: (x,u),(x,v),(y,u),(y,v) → 4.
	if len(labels) != 4 {
		t.Fatalf("composite dictionary %v, want 4 entries", labels)
	}

	counts, err := comp.Counts(ctx, []string{"T", "__joint"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	distinctJoint := map[int32]bool{}
	for k, c := range counts {
		total += c
		distinctJoint[k.Field(1)] = true
	}
	if total != 6 {
		t.Fatalf("composite counts sum to %d, want 6", total)
	}
	if len(distinctJoint) != 4 {
		t.Fatalf("composite codes in counts = %d, want 4", len(distinctJoint))
	}

	// Marginalizing the composite must reproduce the joint (A,B) histogram.
	jointOnly, err := comp.Counts(ctx, []string{"__joint"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rel.Counts(ctx, []string{"A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(jointOnly) != len(raw) {
		t.Fatalf("composite marginal has %d cells, want %d", len(jointOnly), len(raw))
	}
	sumJ := 0
	for _, c := range jointOnly {
		sumJ += c
	}
	if sumJ != 6 {
		t.Fatalf("composite marginal sums to %d, want 6", sumJ)
	}
}

func TestWithCompositeValidation(t *testing.T) {
	rel := mem.New(fixture(t))
	if _, err := source.WithComposite(rel, "A", []string{"B"}); err == nil {
		t.Error("composite shadowing an existing attribute accepted")
	}
	if _, err := source.WithComposite(rel, "__j", nil); err == nil {
		t.Error("empty constituent list accepted")
	}
	if _, err := source.WithComposite(rel, "__j", []string{"missing"}); !errors.Is(err, hyperr.ErrUnknownAttribute) {
		t.Errorf("missing constituent: err = %v, want ErrUnknownAttribute", err)
	}
}

func TestMaterializeHelper(t *testing.T) {
	ctx := context.Background()
	tab := fixture(t)
	rel := mem.New(tab)
	got, err := source.Materialize(ctx, rel)
	if err != nil {
		t.Fatal(err)
	}
	if got != tab {
		t.Error("mem Materialize should return the backing table")
	}
	if _, err := source.Materialize(ctx, source.CountsOnly(rel)); !errors.Is(err, hyperr.ErrNeedsMaterialization) {
		t.Errorf("counts-only Materialize err = %v, want ErrNeedsMaterialization", err)
	}
}

// countingCounter wraps a relation and records how often the dense path is
// actually taken, so tests can tell a forwarded capability from the
// generic sparse fallback (both produce identical counts).
type countingCounter struct {
	source.Relation
	denseCalls int
}

func (c *countingCounter) DenseCounts(ctx context.Context, attrs []string, where source.Predicate, budget int) (*dataset.DenseCounts, error) {
	c.denseCalls++
	return source.Dense(ctx, c.Relation, attrs, where, budget)
}

func TestCountsOnlyForwardsDenseCounter(t *testing.T) {
	ctx := context.Background()
	inner := &countingCounter{Relation: source.CountsOnly(mem.New(fixture(t)))}
	wrapped := source.CountsOnly(inner)

	// The wrapper must still advertise the capability...
	if _, ok := wrapped.(source.DenseCounter); !ok {
		t.Fatal("CountsOnly dropped the DenseCounter capability")
	}
	// ...and route Dense through the backend's own dense path.
	dc, err := source.Dense(ctx, wrapped, []string{"A", "B"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dc == nil || dc.Total != 6 {
		t.Fatalf("dense counts through CountsOnly = %+v, want total 6", dc)
	}
	if inner.denseCalls == 0 {
		t.Error("CountsOnly fell back to the sparse path instead of forwarding DenseCounts")
	}

	// The capability must survive restriction, and the row-hiding guarantee
	// must hold on both the wrapper and its restrictions.
	view, err := wrapped.Restrict(ctx, dataset.Eq{Attr: "T", Value: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := view.(source.DenseCounter); !ok {
		t.Error("CountsOnly restriction dropped the DenseCounter capability")
	}
	if _, err := source.Materialize(ctx, view); !errors.Is(err, hyperr.ErrNeedsMaterialization) {
		t.Errorf("restricted counts-only Materialize err = %v, want ErrNeedsMaterialization", err)
	}
	if card, err := source.Card(ctx, wrapped, "A"); err != nil || card != 2 {
		t.Errorf("Card through CountsOnly = %d, %v, want 2, nil", card, err)
	}
}

func TestMemRestrictCompacts(t *testing.T) {
	ctx := context.Background()
	rel := mem.New(fixture(t))
	view, err := rel.Restrict(ctx, dataset.Eq{Attr: "T", Value: "1"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := view.NumRows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restricted rows = %d, want 3", n)
	}
	labels, err := view.Labels(ctx, "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 || labels[0] != "1" {
		t.Fatalf("restricted T dictionary = %v, want [1]", labels)
	}
	if rel.Backend() == view.Backend() {
		t.Error("restriction must change the backend identity")
	}
}
