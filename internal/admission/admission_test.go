package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic limiter and
// EWMA tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Limiter

func TestLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(2, 3, clk.Now) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("fourth request admitted past the burst")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s] for rate 2/s", retry)
	}
	// Another client is unaffected.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("independent client refused")
	}
	// Half a second refills one token at 2/s.
	clk.Advance(500 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("second request admitted with an empty bucket")
	}
	if l.Denied() != 2 {
		t.Fatalf("Denied = %d, want 2", l.Denied())
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0, nil)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatal("disabled limiter refused")
		}
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("a"); !ok {
		t.Fatal("nil limiter refused")
	}
}

func TestLimiterEvictsIdleClientsPastCap(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 1, clk.Now)
	l.maxN = 4
	for _, id := range []string{"a", "b", "c", "d"} {
		l.Allow(id)
	}
	clk.Advance(10 * time.Second) // everyone idle and refilled
	l.Allow("e")
	if len(l.bkts) > 4 {
		t.Fatalf("bucket map grew to %d, cap 4", len(l.bkts))
	}
}

// ---------------------------------------------------------------------------
// Queue

func mustAcquire(t *testing.T, q *Queue, client string, n int) func() {
	t.Helper()
	release, err := q.Acquire(context.Background(), client, 1, n)
	if err != nil {
		t.Fatalf("Acquire(%s, %d): %v", client, n, err)
	}
	return release
}

// TestMultiSlotReservationNotStarvedBySingles is the starvation
// regression for the bare-channel semaphore this queue replaced: a batch
// reserving N slots could wait forever while racing singles barged onto
// the channel one slot at a time. The fair queue grants in virtual-finish
// order and lets a reservation accumulate freed slots, so a flood of
// later singles cannot overtake it.
func TestMultiSlotReservationNotStarvedBySingles(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2, MaxQueued: -1})

	// Two singles hold the full capacity.
	r1 := mustAcquire(t, q, "singles", 1)
	r2 := mustAcquire(t, q, "singles", 1)

	// The batch queues for both slots...
	var batchGranted atomic.Bool
	batchReady := make(chan struct{})
	go func() {
		release, err := q.Acquire(context.Background(), "batch", 1, 2)
		if err != nil {
			t.Errorf("batch acquire: %v", err)
			close(batchReady)
			return
		}
		batchGranted.Store(true)
		close(batchReady)
		release()
	}()
	waitQueued(t, q, 1)

	// ...and a flood of racing singles queues behind it. Singles granted
	// while the batch is still waiting are overtakes; after the batch
	// releases, the flood draining is the normal course of business.
	var overtakes atomic.Int64
	var wg sync.WaitGroup
	const flood = 50
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := q.Acquire(context.Background(), "singles", 1, 1)
			if err != nil {
				t.Errorf("single acquire: %v", err)
				return
			}
			if !batchGranted.Load() {
				overtakes.Add(1)
			}
			release()
		}()
	}
	waitQueued(t, q, 1+flood)

	// Free the initial slots: the batch must be served before the flood.
	r1()
	r2()
	select {
	case <-batchReady:
	case <-time.After(5 * time.Second):
		t.Fatal("batch starved: 2-slot reservation not granted while singles flood the queue")
	}
	if n := overtakes.Load(); n > 0 {
		t.Errorf("%d singles overtook the earlier batch reservation", n)
	}
	wg.Wait()
}

// TestPartialReservationHoldsFreedSlots pins the mechanism itself: with
// the batch first in virtual order, a freed slot is reserved for it and
// no later single runs on it.
func TestPartialReservationHoldsFreedSlots(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2, MaxQueued: -1})
	r1 := mustAcquire(t, q, "a", 1)
	r2 := mustAcquire(t, q, "a", 1)

	batchReady := make(chan struct{})
	go func() {
		release, err := q.Acquire(context.Background(), "batch", 1, 2)
		if err == nil {
			close(batchReady)
			release()
		}
	}()
	waitQueued(t, q, 1)

	singleReady := make(chan struct{})
	go func() {
		release, err := q.Acquire(context.Background(), "late", 1, 1)
		if err == nil {
			close(singleReady)
			release()
		}
	}()
	waitQueued(t, q, 2)

	r1() // one slot frees: reserved for the batch, the single must not run
	select {
	case <-singleReady:
		t.Fatal("single granted a slot reserved for the earlier batch")
	case <-batchReady:
		t.Fatal("batch granted with only one slot free")
	case <-time.After(50 * time.Millisecond):
	}
	r2() // second slot completes the reservation
	select {
	case <-batchReady:
	case <-time.After(5 * time.Second):
		t.Fatal("batch not granted after capacity freed")
	}
	select {
	case <-singleReady:
	case <-time.After(5 * time.Second):
		t.Fatal("single not granted after batch released")
	}
}

// TestWeightedFairInterleaving: a light client's sparse requests must not
// wait behind a heavy client's entire backlog.
func TestWeightedFairInterleaving(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 1, MaxQueued: -1})
	hold := mustAcquire(t, q, "warm", 1)

	const heavyN = 8
	order := make(chan string, heavyN+1)
	var wg sync.WaitGroup
	acquireInto := func(client string) {
		defer wg.Done()
		release, err := q.Acquire(context.Background(), client, 1, 1)
		if err != nil {
			t.Errorf("%s: %v", client, err)
			return
		}
		order <- client
		release()
	}
	// The heavy tenant floods first...
	for i := 0; i < heavyN; i++ {
		wg.Add(1)
		go acquireInto("heavy")
		waitQueued(t, q, i+1)
	}
	// ...then the light tenant asks for one slot.
	wg.Add(1)
	go acquireInto("light")
	waitQueued(t, q, heavyN+1)

	hold()
	wg.Wait()
	close(order)
	pos := 0
	lightAt := -1
	for client := range order {
		if client == "light" {
			lightAt = pos
		}
		pos++
	}
	// Virtual-finish ordering places light's single after at most a couple
	// of heavy grants, never behind the whole backlog.
	if lightAt < 0 || lightAt > 3 {
		t.Fatalf("light tenant served at position %d of %d — starved behind the heavy backlog", lightAt, pos)
	}
}

func TestQueueDepthBoundSheds(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 1, MaxQueued: 2})
	hold := mustAcquire(t, q, "a", 1)
	defer hold()

	for i := 0; i < 2; i++ {
		go q.Acquire(context.Background(), "a", 1, 1) //nolint:errcheck
	}
	waitQueued(t, q, 2)

	_, err := q.Acquire(context.Background(), "b", 1, 1)
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != QueueFull {
		t.Fatalf("err = %v, want QueueFull rejection", err)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", rej.RetryAfter)
	}
	if st := q.Stats(); st.ShedFull != 1 {
		t.Fatalf("ShedFull = %d, want 1", st.ShedFull)
	}
}

func TestDeadlineUnmeetableRejectedAtEnqueue(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(QueueConfig{Capacity: 1, MaxQueued: -1, Clock: clk.Now})

	// Teach the EWMA that requests hold their slot for ~10s.
	r := mustAcquire(t, q, "a", 1)
	clk.Advance(10 * time.Second)
	r()

	hold := mustAcquire(t, q, "a", 1)
	defer hold()

	// A 50ms deadline cannot survive a ~10s backlog: reject immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := q.Acquire(ctx, "b", 1, 1)
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != DeadlineUnmeetable {
		t.Fatalf("err = %v, want DeadlineUnmeetable rejection", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("rejection took %v, want immediate", took)
	}
	if st := q.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

func TestDeadlineExpiryWhileQueuedIsTypedShed(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 1, MaxQueued: -1})
	hold := mustAcquire(t, q, "a", 1)
	defer hold()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := q.Acquire(ctx, "b", 1, 1)
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != DeadlineUnmeetable {
		t.Fatalf("err = %v, want DeadlineUnmeetable rejection (typed shed, not a bare timeout)", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("queued deadline expiry surfaced as context.DeadlineExceeded")
	}
}

func TestCancelWhileQueuedIsCallerError(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 1, MaxQueued: -1})
	hold := mustAcquire(t, q, "a", 1)
	defer hold()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, "b", 1, 1)
		errCh <- err
	}()
	waitQueued(t, q, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (client went away, not a shed)", err)
	}
	if st := q.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
}

func TestCloseShedsQueuedFinishesAdmitted(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 1, MaxQueued: -1})
	hold := mustAcquire(t, q, "a", 1)

	errCh := make(chan error, 1)
	go func() {
		_, err := q.Acquire(context.Background(), "b", 1, 1)
		errCh <- err
	}()
	waitQueued(t, q, 1)

	q.Close()
	var rej *Rejection
	if err := <-errCh; !errors.As(err, &rej) || rej.Reason != Draining {
		t.Fatalf("queued waiter got %v, want Draining rejection", rej)
	}
	// The admitted holder's release is still accepted after Close.
	hold()
	// New arrivals are refused outright.
	if _, err := q.Acquire(context.Background(), "c", 1, 1); !errors.As(err, &rej) || rej.Reason != Draining {
		t.Fatalf("post-close Acquire got %v, want Draining rejection", rej)
	}
	st := q.Stats()
	if st.Admitted != 1 || st.ShedDraining != 2 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want Admitted 1, ShedDraining 2, Queued 0", st)
	}
}

func TestAcquireClampsToCapacity(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2, MaxQueued: -1})
	release, err := q.Acquire(context.Background(), "a", 1, 100)
	if err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	release()
	if st := q.Stats(); st.Admitted != 1 {
		t.Fatalf("Admitted = %d, want 1", st.Admitted)
	}
}

// TestQueueConcurrentChurn hammers the queue from many goroutines under
// -race: every acquisition must complete, stats must reconcile, and the
// full capacity must be free at the end.
func TestQueueConcurrentChurn(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 4, MaxQueued: -1})
	clients := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	var done atomic.Int64
	for i := 0; i < 120; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 1 + i%3
			release, err := q.Acquire(context.Background(), clients[i%len(clients)], 1, n)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			done.Add(1)
			release()
		}(i)
	}
	wg.Wait()
	if done.Load() != 120 {
		t.Fatalf("done = %d, want 120", done.Load())
	}
	st := q.Stats()
	if st.Admitted != 120 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want Admitted 120, Queued 0", st)
	}
	// All slots back: a full-capacity acquire succeeds immediately.
	release := mustAcquire(t, q, "a", 4)
	release()
}

// waitQueued blocks until the queue reports depth queued waiters.
func waitQueued(t *testing.T, q *Queue, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Queued < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", depth, q.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
}
