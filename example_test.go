package hypdb_test

import (
	"context"
	"fmt"
	"log"

	"hypdb"
	"hypdb/internal/memsql"
)

// kidneyTable builds the classic kidney-stone dataset: treatment A beats B
// within each stone-size stratum yet loses in the aggregate — Simpson's
// paradox, with Size the confounding covariate.
func kidneyTable() *hypdb.Table {
	b := hypdb.NewBuilder("T", "Size", "Success")
	add := func(t, size string, success, total int) {
		for i := 0; i < total; i++ {
			s := "0"
			if i < success {
				s = "1"
			}
			if err := b.Add(t, size, s); err != nil {
				log.Fatal(err)
			}
		}
	}
	add("A", "small", 81, 87)
	add("B", "small", 234, 270)
	add("A", "large", 192, 263)
	add("B", "large", 55, 80)
	tab, err := b.Table()
	if err != nil {
		log.Fatal(err)
	}
	return tab
}

// ExampleOpen opens a session handle over an in-memory table and inspects
// its schema — the starting point for every analysis.
func ExampleOpen() {
	db := hypdb.Open(kidneyTable())
	defer db.Close()

	ctx := context.Background()
	n, err := db.NumRows(ctx)
	if err != nil {
		log.Fatal(err)
	}
	attrs, err := db.Attributes(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d rows\n", n)
	for _, a := range attrs {
		fmt.Printf("%s: %d distinct\n", a.Name, a.Distinct)
	}
	// Output:
	// 700 rows
	// T: 2 distinct
	// Size: 2 distinct
	// Success: 2 distinct
}

// ExampleOpenSQL analyzes a table served by a database/sql driver — the
// engine pushes its group-by count queries down to the database. The
// in-process memsql driver stands in for a real DBMS here.
func ExampleOpenSQL() {
	memsql.Register("stones", kidneyTable())
	defer memsql.Unregister("stones")
	conn, err := memsql.Open("")
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	db, err := hypdb.OpenSQL(ctx, conn, "stones")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close() // releases the *sql.DB

	n, err := db.NumRows(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d rows via SQL pushdown\n", n)
	// Output:
	// 700 rows via SQL pushdown
}

// ExampleDB_Analyze runs the full detect → explain → resolve pipeline on
// one query. Size is fixed as the covariate (domain knowledge says it
// confounds — doctors assign the treatment by stone size); the balance
// test flags the bias and the rewriting reverses the naive comparison.
func ExampleDB_Analyze() {
	db := hypdb.Open(kidneyTable())
	defer db.Close()

	report, err := db.Analyze(context.Background(), hypdb.Query{
		Treatment: "T",
		Outcomes:  []string{"Success"},
	}, hypdb.WithMethod(hypdb.ChiSquared), hypdb.WithSeed(1),
		hypdb.WithCovariates("Size"))
	if err != nil {
		log.Fatal(err)
	}
	naive := report.OriginalComparisons[0].Diffs[0]
	adjusted := report.TotalComparisons[0].Diffs[0]
	fmt.Printf("biased: %v\n", report.BiasTotal[0].Biased)
	fmt.Printf("naive B－A:    %+.3f\n", naive)
	fmt.Printf("adjusted B－A: %+.3f\n", adjusted)
	// Output:
	// biased: true
	// naive B－A:    +0.046
	// adjusted B－A: -0.054
}

// ExampleDB_Audit sweeps the whole (treatment, outcome) query lattice
// instead of analyzing one hand-picked query: the sweep enumerates every
// eligible attribute pair, prunes low-support candidates, and ranks the
// biased queries by effect-reversal strength.
func ExampleDB_Audit() {
	db := hypdb.Open(kidneyTable())
	defer db.Close()

	report, err := db.Audit(context.Background(), hypdb.AuditSpec{},
		hypdb.WithMethod(hypdb.ChiSquared), hypdb.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidates: %d, biased: %d\n", report.Candidates, report.TotalFindings)
	for _, f := range report.Findings {
		fmt.Printf("avg(%s) by %s: %+.3f → %+.3f (reversed=%v)\n",
			f.Outcome, f.Treatment, f.OriginalDiff, f.AdjustedDiff, f.Reversed)
	}
	// Output:
	// candidates: 2, biased: 2
	// avg(Success) by T: +0.046 → -0.048 (reversed=true)
	// avg(Success) by Size: +0.162 → +0.190 (reversed=false)
}

// ExampleRun executes a group-by-average query and compares the two
// treatment groups — the starting point of every HypDB analysis.
func ExampleRun() {
	b := hypdb.NewBuilder("Carrier", "Airport", "Delayed")
	rows := [][]string{
		{"AA", "COS", "0"}, {"AA", "COS", "0"}, {"AA", "COS", "1"},
		{"AA", "ROC", "1"}, {"UA", "COS", "0"},
		{"UA", "ROC", "1"}, {"UA", "ROC", "0"}, {"UA", "ROC", "1"},
	}
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			log.Fatal(err)
		}
	}
	tab, err := b.Table()
	if err != nil {
		log.Fatal(err)
	}
	ans, err := hypdb.Run(tab, hypdb.Query{
		Treatment: "Carrier",
		Outcomes:  []string{"Delayed"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ans.Rows {
		fmt.Printf("%s %.2f\n", row.Treatment, row.Avgs[0])
	}
	// Output:
	// AA 0.50
	// UA 0.50
}

// ExampleRewriteTotal removes confounding by adjusting for a covariate: the
// classic kidney-stone data where treatment A wins in every stratum yet
// loses in the aggregate.
func ExampleRewriteTotal() {
	b := hypdb.NewBuilder("T", "Size", "Success")
	add := func(t, size string, success, total int) {
		for i := 0; i < total; i++ {
			s := "0"
			if i < success {
				s = "1"
			}
			if err := b.Add(t, size, s); err != nil {
				log.Fatal(err)
			}
		}
	}
	add("A", "small", 81, 87)
	add("B", "small", 234, 270)
	add("A", "large", 192, 263)
	add("B", "large", 55, 80)
	tab, err := b.Table()
	if err != nil {
		log.Fatal(err)
	}
	q := hypdb.Query{Treatment: "T", Outcomes: []string{"Success"}}

	naive, err := hypdb.Run(tab, q)
	if err != nil {
		log.Fatal(err)
	}
	adjusted, err := hypdb.RewriteTotal(tab, q, []string{"Size"})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range naive.Rows {
		fmt.Printf("naive    %s %.3f\n", row.Treatment, row.Avgs[0])
	}
	for _, row := range adjusted.Rows {
		fmt.Printf("adjusted %s %.3f\n", row.Treatment, row.Avgs[0])
	}
	// Output:
	// naive    A 0.780
	// naive    B 0.826
	// adjusted A 0.833
	// adjusted B 0.779
}
