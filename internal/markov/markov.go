// Package markov implements data-driven Markov-boundary discovery: the
// Grow-Shrink algorithm (Margaritis & Thrun, cited as [28]) that HypDB uses
// to bound the CD algorithm's search (Sec 4), and Incremental Association
// (IAMB, [58]), one of the baselines in the Fig 5 quality comparison.
//
// Both algorithms are parameterized by an independence.Tester so they can
// run against χ², MIT, HyMIT, or a ground-truth d-separation oracle, and
// consume a source.Relation, so they run unchanged against any counts-
// answering storage backend.
package markov

import (
	"context"
	"fmt"
	"sort"

	"hypdb/internal/hyperr"
	"hypdb/internal/independence"
	"hypdb/internal/stats"
	"hypdb/source"
)

// Config controls boundary discovery.
type Config struct {
	// Tester decides conditional independence; required.
	Tester independence.Tester
	// Alpha is the significance level; zero means independence.DefaultAlpha.
	Alpha float64
	// MaxBoundary caps the boundary size during the grow phase as a
	// safeguard against runaway growth on noisy data; zero means no cap.
	MaxBoundary int
}

func (c Config) alpha() float64 {
	if c.Alpha <= 0 {
		return independence.DefaultAlpha
	}
	return c.Alpha
}

// GrowShrink computes the Markov boundary of target among candidates using
// the two-phase Grow-Shrink algorithm. Candidates are visited in order of
// decreasing marginal association with the target (the standard GS
// heuristic), which both speeds convergence and improves robustness.
func GrowShrink(ctx context.Context, rel source.Relation, target string, candidates []string, cfg Config) ([]string, error) {
	if cfg.Tester == nil {
		return nil, fmt.Errorf("markov: nil tester")
	}
	if !rel.HasAttribute(target) {
		return nil, fmt.Errorf("markov: no column %q: %w", target, hyperr.ErrUnknownAttribute)
	}
	cands, err := validCandidates(rel, target, candidates)
	if err != nil {
		return nil, err
	}
	// Bind provider-less χ²-style testers to one shared cached provider for
	// the whole grow/shrink search, so the entropies of overlapping
	// conditioning sets are computed once (Sec 6 entropy caching).
	cfg.Tester, err = independence.SharedProvider(ctx, cfg.Tester, rel)
	if err != nil {
		return nil, err
	}
	ordered, err := orderByAssociation(ctx, rel, target, cands)
	if err != nil {
		return nil, err
	}
	alpha := cfg.alpha()

	// Grow: admit any candidate dependent on the target given the current
	// boundary; repeat until a full pass admits nothing.
	boundary := []string{}
	inB := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, x := range ordered {
			if inB[x] {
				continue
			}
			if cfg.MaxBoundary > 0 && len(boundary) >= cfg.MaxBoundary {
				break
			}
			res, err := cfg.Tester.Test(ctx, rel, target, x, boundary)
			if err != nil {
				return nil, err
			}
			if !independence.Decision(res, alpha) {
				boundary = append(boundary, x)
				inB[x] = true
				changed = true
			}
		}
	}

	// Shrink: remove any member independent of the target given the rest.
	return shrink(ctx, rel, target, boundary, cfg)
}

// IAMB computes the Markov boundary with the Incremental Association
// algorithm: the grow phase admits, per iteration, the single candidate
// with the strongest association (largest estimated CMI) with the target
// given the current boundary, provided the dependence is significant. The
// shrink phase is identical to Grow-Shrink's.
func IAMB(ctx context.Context, rel source.Relation, target string, candidates []string, cfg Config) ([]string, error) {
	if cfg.Tester == nil {
		return nil, fmt.Errorf("markov: nil tester")
	}
	if !rel.HasAttribute(target) {
		return nil, fmt.Errorf("markov: no column %q: %w", target, hyperr.ErrUnknownAttribute)
	}
	cands, err := validCandidates(rel, target, candidates)
	if err != nil {
		return nil, err
	}
	cfg.Tester, err = independence.SharedProvider(ctx, cfg.Tester, rel)
	if err != nil {
		return nil, err
	}
	alpha := cfg.alpha()

	boundary := []string{}
	inB := make(map[string]bool)
	for {
		if cfg.MaxBoundary > 0 && len(boundary) >= cfg.MaxBoundary {
			break
		}
		best := ""
		bestMI := 0.0
		for _, x := range cands {
			if inB[x] {
				continue
			}
			res, err := cfg.Tester.Test(ctx, rel, target, x, boundary)
			if err != nil {
				return nil, err
			}
			if !independence.Decision(res, alpha) && res.MI > bestMI {
				best, bestMI = x, res.MI
			}
		}
		if best == "" {
			break
		}
		boundary = append(boundary, best)
		inB[best] = true
	}

	return shrink(ctx, rel, target, boundary, cfg)
}

// shrink removes boundary members that are independent of the target given
// the remaining members, iterating to a fixed point.
func shrink(ctx context.Context, rel source.Relation, target string, boundary []string, cfg Config) ([]string, error) {
	alpha := cfg.alpha()
	out := append([]string(nil), boundary...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(out); i++ {
			rest := make([]string, 0, len(out)-1)
			rest = append(rest, out[:i]...)
			rest = append(rest, out[i+1:]...)
			res, err := cfg.Tester.Test(ctx, rel, target, out[i], rest)
			if err != nil {
				return nil, err
			}
			if independence.Decision(res, alpha) {
				out = append(out[:i], out[i+1:]...)
				changed = true
				i--
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// validCandidates filters out the target itself and verifies existence.
func validCandidates(rel source.Relation, target string, candidates []string) ([]string, error) {
	out := make([]string, 0, len(candidates))
	seen := make(map[string]bool, len(candidates))
	for _, c := range candidates {
		if c == target {
			continue
		}
		if seen[c] {
			return nil, fmt.Errorf("markov: duplicate candidate %q", c)
		}
		seen[c] = true
		if !rel.HasAttribute(c) {
			return nil, fmt.Errorf("markov: no column %q: %w", c, hyperr.ErrUnknownAttribute)
		}
		out = append(out, c)
	}
	return out, nil
}

// orderByAssociation sorts candidates by decreasing estimated marginal
// mutual information with the target, computed from one pairwise count
// query per candidate.
func orderByAssociation(ctx context.Context, rel source.Relation, target string, candidates []string) ([]string, error) {
	cardT, err := source.Card(ctx, rel, target)
	if err != nil {
		return nil, err
	}
	n, err := rel.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	mis := make([]float64, len(candidates))
	for i, c := range candidates {
		cardC, err := source.Card(ctx, rel, c)
		if err != nil {
			return nil, err
		}
		denseT := make([]int, cardT)
		denseC := make([]int, cardC)
		var htc float64
		if dc, err := source.Dense(ctx, rel, []string{target, c}, nil, 0); err != nil {
			return nil, err
		} else if dc != nil {
			// The pairwise joint in flat form: fold both marginals out of
			// the cells, H(TC) from the sorted non-zero multiset.
			cell := 0
			for cc := 0; cc < cardC; cc++ {
				for tc := 0; tc < cardT; tc++ {
					cnt := dc.Cells[cell]
					denseT[tc] += cnt
					denseC[cc] += cnt
					cell++
				}
			}
			htc = stats.EntropyCountsStable(dc.Cells, n, stats.PlugIn)
		} else {
			joint, err := rel.Counts(ctx, []string{target, c}, nil)
			if err != nil {
				return nil, err
			}
			for k, cnt := range joint {
				denseT[k.Field(0)] += cnt
				denseC[k.Field(1)] += cnt
			}
			htc = stats.EntropyCountsMap(joint, n, stats.PlugIn)
		}
		// H(T) and H(C) from marginals folded out of the joint (in code
		// order, matching the code-vector estimator exactly).
		ht := stats.EntropyCounts(denseT, n, stats.PlugIn)
		hc := stats.EntropyCounts(denseC, n, stats.PlugIn)
		mis[i] = ht + hc - htc
	}
	order := stats.RankDescending(mis)
	out := make([]string, len(candidates))
	for i, idx := range order {
		out[i] = candidates[idx]
	}
	return out, nil
}
