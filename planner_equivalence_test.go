package hypdb_test

// Planner equivalence matrix: the lattice-aware batch planner is a cost
// optimization only, so reports produced through it must be byte-identical
// to the unplanned per-request path on every storage backend — and both
// must still match the paper-reproduction golden files. The batches run
// replicated queries over a worker pool, so under -race this also
// exercises the demand-coalescing gate concurrently.

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"hypdb"
	"hypdb/internal/datagen"
)

// normalizedReport strips per-run wall-clock noise (the Timing block) so
// two reports can be compared byte for byte.
func normalizedReport(t *testing.T, rep *hypdb.Report) string {
	t.Helper()
	cp := *rep
	var zero hypdb.Report
	cp.Timing = zero.Timing
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// plannerBackends enumerates the storage backends of the equivalence
// matrix; each opener returns a fresh session handle so the two paths
// cannot share covariate-discovery memos.
func plannerBackends(t *testing.T, dataset string, tab *hypdb.Table) map[string]func(tag string) *hypdb.DB {
	t.Helper()
	return map[string]func(tag string) *hypdb.DB{
		"mem": func(string) *hypdb.DB {
			return hypdb.Open(tab)
		},
		"sqldb": func(tag string) *hypdb.DB {
			return sqlBackedDB(t, fmt.Sprintf("plan_%s_%s", dataset, tag), tab)
		},
		"sharded": func(string) *hypdb.DB {
			return hypdb.Open(tab, hypdb.WithShards(2))
		},
		"remote": func(string) *hypdb.DB {
			db, _ := openRemoteCluster(t, dataset, tab, 2)
			return db
		},
	}
}

// checkPlannerEquivalence runs one dataset's query as a planned batch and
// as the unplanned path on every backend, requiring byte-identical reports
// and golden agreement.
func checkPlannerEquivalence(t *testing.T, dataset, golden string, tab *hypdb.Table, q hypdb.Query, opts ...hypdb.Option) {
	t.Helper()
	ctx := context.Background()
	for backend, open := range plannerBackends(t, dataset, tab) {
		t.Run(backend, func(t *testing.T) {
			// Unplanned reference: same entry point, planner off.
			off := open("off")
			refReps, err := off.AnalyzeAll(ctx, []hypdb.Query{q},
				append([]hypdb.Option{hypdb.WithPlanner(false)}, opts...)...)
			if err != nil {
				t.Fatalf("unplanned AnalyzeAll: %v", err)
			}
			want := normalizedReport(t, refReps[0])
			if off.Stats().Planner.Plans != 0 {
				t.Fatal("WithPlanner(false) still executed a plan")
			}

			// Planned: a replicated batch over a worker pool, so the
			// coalescing gate and the primed cuboids serve concurrent
			// requests (the -race surface).
			on := open("on")
			reps, err := on.AnalyzeAll(ctx, []hypdb.Query{q, q, q},
				append([]hypdb.Option{hypdb.WithWorkers(3)}, opts...)...)
			if err != nil {
				t.Fatalf("planned AnalyzeAll: %v", err)
			}
			for i, rep := range reps {
				if got := normalizedReport(t, rep); got != want {
					t.Fatalf("planned report %d differs from unplanned path\n got: %s\nwant: %s", i, got, want)
				}
			}
			// Plans alone is not enough: an executed plan that materialized
			// nothing (e.g. every view failing the Primer check) silently
			// degrades the backend to the per-request path. Wide closures
			// may legitimately end as trimmed best-effort cuboids with their
			// demands unassigned, so accept either covered demands or cells
			// actually primed.
			if ps := on.Stats().Planner; ps.Plans == 0 || (ps.DemandsPlanned == 0 && ps.CellsMaterialized == 0) {
				t.Errorf("planned batch neither covered demands nor primed cells: %+v", ps)
			}
			checkGolden(t, golden, summarize(dataset, tab.NumRows(), reps[0]))
		})
	}
}

func TestPlannerEquivalenceBerkeley(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	checkPlannerEquivalence(t, "BerkeleyData", "berkeley.golden.json", tab,
		datagen.BerkeleyQuery(), hypdb.WithSeed(1))
}

func TestPlannerEquivalenceStaples(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-row equivalence matrix in -short mode")
	}
	tab, err := datagen.Staples(50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkPlannerEquivalence(t, "StaplesData", "staples.golden.json", tab,
		datagen.StaplesQuery(), hypdb.WithSeed(1))
}

func TestPlannerEquivalenceFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("12k-row equivalence matrix in -short mode")
	}
	tab, err := datagen.Flight(12000, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkPlannerEquivalence(t, "FlightData", "flight.golden.json", tab,
		datagen.FlightQuery(), hypdb.WithSeed(1), hypdb.WithPermutations(200))
}
