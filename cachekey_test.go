package hypdb

// White-box regression tests for the session cache keys: the backend
// identity must be part of every covariate-discovery key so that two
// handles over different sources can never collide if the cache is ever
// shared between them.

import (
	"testing"

	"hypdb/internal/core"
)

func TestCDKeyIncorporatesBackendIdentity(t *testing.T) {
	cfg := core.Config{}
	a := cdKey("mem:0x1", "", "T", []string{"Z"}, []string{"Y"}, cfg)
	b := cdKey("mem:0x2", "", "T", []string{"Z"}, []string{"Y"}, cfg)
	if a == b {
		t.Fatal("cdKey ignores the backend identity: two sources share a key")
	}
	if a != cdKey("mem:0x1", "", "T", []string{"Z"}, []string{"Y"}, cfg) {
		t.Fatal("cdKey is not deterministic")
	}
}

func TestCDKeyInjectiveAcrossFieldBoundaries(t *testing.T) {
	cfg := core.Config{}
	// A backend string that ends like a whereKey prefix must not collide
	// with the same bytes split differently across the two fields — the
	// length-prefixed encoding guarantees it.
	a := cdKey("be", "ckend", "T", nil, nil, cfg)
	b := cdKey("becken", "d", "T", nil, nil, cfg)
	if a == b {
		t.Fatal("cdKey is not injective across the backend/where boundary")
	}
	// Attribute lists must not leak across each other either.
	c := cdKey("x", "", "T", []string{"A", "B"}, nil, cfg)
	d := cdKey("x", "", "T", []string{"A"}, []string{"B"}, cfg)
	if c == d {
		t.Fatal("cdKey is not injective across the candidates/outcomes boundary")
	}
}

func TestDistinctHandlesOverSameTableShareBackend(t *testing.T) {
	tab := twoColTable(t)
	db1, db2 := Open(tab), Open(tab)
	if db1.rel.Backend() != db2.rel.Backend() {
		t.Error("two handles over one table should report the same backend identity")
	}
	other := twoColTable(t)
	db3 := Open(other)
	if db1.rel.Backend() == db3.rel.Backend() {
		t.Error("handles over different tables must have distinct backend identities")
	}
}

func twoColTable(t *testing.T) *Table {
	t.Helper()
	b := NewBuilder("T", "Y")
	for i := 0; i < 8; i++ {
		b.MustAdd("ab"[i%2:i%2+1], "01"[i%2:i%2+1])
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}
