package cdd

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"hypdb/internal/dag"
	"hypdb/internal/dataset"
	"hypdb/internal/independence"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

// colliderDAG is Z → T ← W, T → Y: the minimal graph whose v-structure the
// constraint-based learners must orient.
func colliderDAG(t *testing.T) *dag.DAG {
	t.Helper()
	g := dag.MustNew("Z", "W", "T", "Y")
	g.MustAddEdge("Z", "T")
	g.MustAddEdge("W", "T")
	g.MustAddEdge("T", "Y")
	return g
}

func dummyTable(t *testing.T, g *dag.DAG) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder(g.Names()...)
	row := make([]string, g.NumNodes())
	for i := range row {
		row[i] = "0"
	}
	b.MustAdd(row...)
	row[0] = "1"
	b.MustAdd(row...)
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestPDAGBasics(t *testing.T) {
	p, err := NewPDAG([]string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	p.AddUndirected(0, 1)
	if !p.Adjacent(0, 1) || !p.IsUndirected(0, 1) {
		t.Error("undirected edge not recorded")
	}
	p.Orient(0, 1)
	if !p.HasDirected(0, 1) || p.IsUndirected(0, 1) {
		t.Error("orientation not recorded")
	}
	// Re-orienting the other way replaces the direction.
	p.Orient(1, 0)
	if p.HasDirected(0, 1) || !p.HasDirected(1, 0) {
		t.Error("re-orientation failed")
	}
	parents, err := p.Parents("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(parents) != 1 || parents[0] != "B" {
		t.Errorf("Parents(A) = %v, want [B]", parents)
	}
	if _, err := p.Parents("missing"); err == nil {
		t.Error("missing node accepted")
	}
	if p.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", p.NumEdges())
	}
	if _, err := NewPDAG(nil); err == nil {
		t.Error("empty PDAG accepted")
	}
	if _, err := NewPDAG([]string{"A", "A"}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestF1Score(t *testing.T) {
	cases := []struct {
		pred, truth         []string
		wantP, wantR, wantF float64
	}{
		{nil, nil, 1, 1, 1},
		{[]string{"A"}, []string{"A"}, 1, 1, 1},
		{[]string{"A", "B"}, []string{"A"}, 0.5, 1, 2.0 / 3},
		{[]string{"A"}, []string{"A", "B"}, 1, 0.5, 2.0 / 3},
		{[]string{"C"}, []string{"A"}, 0, 0, 0},
		{nil, []string{"A"}, 0, 0, 0},
		{[]string{"A"}, nil, 0, 0, 0},
	}
	for _, tc := range cases {
		p, r, f := F1Score(tc.pred, tc.truth)
		if math.Abs(p-tc.wantP) > 1e-12 || math.Abs(r-tc.wantR) > 1e-12 || math.Abs(f-tc.wantF) > 1e-12 {
			t.Errorf("F1Score(%v,%v) = (%v,%v,%v), want (%v,%v,%v)",
				tc.pred, tc.truth, p, r, f, tc.wantP, tc.wantR, tc.wantF)
		}
	}
}

func TestLearnStructureOracleCollider(t *testing.T) {
	g := colliderDAG(t)
	tab := dummyTable(t, g)
	p, err := LearnStructure(context.Background(), mem.New(tab), g.Names(), ConstraintConfig{Tester: dag.Oracle{G: g}})
	if err != nil {
		t.Fatal(err)
	}
	// The v-structure Z → T ← W must be oriented.
	parents, err := p.Parents("T")
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(parents, "Z", "W") {
		t.Errorf("Parents(T) = %v, want Z and W oriented in", parents)
	}
	// Meek R1 then orients T → Y.
	yParents, err := p.Parents("Y")
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(yParents, "T") {
		t.Errorf("Parents(Y) = %v, want [T]", yParents)
	}
	// No spurious adjacency between Z and W.
	if p.Adjacent(p.Index("Z"), p.Index("W")) {
		t.Error("Z and W wrongly adjacent")
	}
}

func TestLearnStructureOracleFig2(t *testing.T) {
	g := dag.MustNew("Z", "W", "T", "Y", "C", "D")
	for _, e := range [][2]string{{"Z", "T"}, {"W", "T"}, {"T", "Y"}, {"T", "C"}, {"D", "C"}} {
		g.MustAddEdge(e[0], e[1])
	}
	tab := dummyTable(t, g)
	for _, boundary := range []BoundaryAlgorithm{GrowShrinkBoundary, IAMBBoundary} {
		p, err := LearnStructure(context.Background(), mem.New(tab), g.Names(), ConstraintConfig{Tester: dag.Oracle{G: g}, Boundary: boundary})
		if err != nil {
			t.Fatal(err)
		}
		// Skeleton must match the true graph's adjacency.
		for i := 0; i < g.NumNodes(); i++ {
			for j := i + 1; j < g.NumNodes(); j++ {
				want := g.Neighbors(i, j)
				gi := p.Index(g.Name(i))
				gj := p.Index(g.Name(j))
				if p.Adjacent(gi, gj) != want {
					t.Errorf("boundary=%v: adjacency(%s,%s) = %v, want %v",
						boundary, g.Name(i), g.Name(j), p.Adjacent(gi, gj), want)
				}
			}
		}
		// Both v-structures (Z→T←W and T→C←D) must be oriented.
		tp, _ := p.Parents("T")
		if !containsAll(tp, "Z", "W") {
			t.Errorf("boundary=%v: Parents(T) = %v", boundary, tp)
		}
		cp, _ := p.Parents("C")
		if !containsAll(cp, "T", "D") {
			t.Errorf("boundary=%v: Parents(C) = %v", boundary, cp)
		}
	}
}

// colliderNet equips the collider DAG with strong, balanced CPTs:
// P(T=1|z,w) has a clear effect from both parents plus interaction, and Y
// is a noisy copy of T.
func colliderNet(t *testing.T) *dag.BayesNet {
	t.Helper()
	g := colliderDAG(t)
	bn, err := dag.NewBayesNet(g, []int{2, 2, 2, 2}, [][]float64{
		{0.5, 0.5}, // Z
		{0.5, 0.5}, // W
		// T | (Z,W) rows 00,01,10,11:
		{0.9, 0.1, 0.4, 0.6, 0.3, 0.7, 0.05, 0.95},
		{0.9, 0.1, 0.1, 0.9}, // Y | T: noisy copy
	})
	if err != nil {
		t.Fatal(err)
	}
	return bn
}

func TestLearnStructureFromSampledData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bn := colliderNet(t)
	g := bn.G
	tab, err := bn.Sample(rng, 30000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := LearnStructure(context.Background(), mem.New(tab), g.Names(), ConstraintConfig{
		Tester: independence.ChiSquare{Est: stats.MillerMadow},
	})
	if err != nil {
		t.Fatal(err)
	}
	parents, err := p.Parents("T")
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1 := F1Score(parents, []string{"Z", "W"})
	if f1 < 0.99 {
		t.Errorf("Parents(T) from data = %v (F1=%v), want {Z,W}", parents, f1)
	}
}

func TestLearnStructureValidation(t *testing.T) {
	g := colliderDAG(t)
	tab := dummyTable(t, g)
	if _, err := LearnStructure(context.Background(), mem.New(tab), g.Names(), ConstraintConfig{}); err == nil {
		t.Error("nil tester accepted")
	}
	if _, err := LearnStructure(context.Background(), mem.New(tab), []string{"missing"}, ConstraintConfig{Tester: dag.Oracle{G: g}}); err == nil {
		t.Error("missing attribute accepted")
	}
}

func TestScorerAICPrefersTrueParent(t *testing.T) {
	// A → B strongly dependent: family score of B given {A} must beat B
	// given {} under every score.
	rng := rand.New(rand.NewSource(2))
	b := dataset.NewBuilder("A", "B", "N")
	for i := 0; i < 2000; i++ {
		a := rng.Intn(2)
		bv := a
		if rng.Float64() < 0.1 {
			bv = 1 - bv
		}
		b.MustAdd(itoa(a), itoa(bv), itoa(rng.Intn(2)))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []ScoreType{AIC, BIC, BDeu} {
		s := NewScorer(mem.New(tab), typ, 1)
		with, err := s.Family(context.Background(), "B", []string{"A"})
		if err != nil {
			t.Fatal(err)
		}
		without, err := s.Family(context.Background(), "B", nil)
		if err != nil {
			t.Fatal(err)
		}
		if with <= without {
			t.Errorf("%v: score(B|A)=%v not better than score(B)=%v", typ, with, without)
		}
		// Noise parent must not pay off.
		withNoise, err := s.Family(context.Background(), "B", []string{"A", "N"})
		if err != nil {
			t.Fatal(err)
		}
		if withNoise > with {
			t.Errorf("%v: noise parent improved score: %v > %v", typ, withNoise, with)
		}
	}
}

func TestScorerMemoization(t *testing.T) {
	tab := dummyTable(t, colliderDAG(t))
	s := NewScorer(mem.New(tab), BIC, 1)
	v1, err := s.Family(context.Background(), "T", []string{"Z", "W"})
	if err != nil {
		t.Fatal(err)
	}
	// Different order, same value (and a cache hit).
	v2, err := s.Family(context.Background(), "T", []string{"W", "Z"})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("family score depends on parent order: %v vs %v", v1, v2)
	}
}

func TestScorerTotal(t *testing.T) {
	tab := dummyTable(t, colliderDAG(t))
	s := NewScorer(mem.New(tab), AIC, 1)
	total, err := s.Total(context.Background(), map[string][]string{"T": nil, "Y": {"T"}})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Family(context.Background(), "T", nil)
	b, _ := s.Family(context.Background(), "Y", []string{"T"})
	if math.Abs(total-(a+b)) > 1e-12 {
		t.Errorf("Total = %v, want %v", total, a+b)
	}
}

func TestHillClimbRecoversChain(t *testing.T) {
	// A → B → C with sharp CPTs; hill climbing should recover a graph in
	// the right equivalence class: skeleton A–B–C without edge A–C.
	rng := rand.New(rand.NewSource(3))
	g := dag.MustNew("A", "B", "C")
	g.MustAddEdge("A", "B")
	g.MustAddEdge("B", "C")
	bn, err := dag.NewBayesNet(g, []int{2, 2, 2}, [][]float64{
		{0.5, 0.5},
		{0.9, 0.1, 0.1, 0.9}, // B: noisy copy of A
		{0.9, 0.1, 0.1, 0.9}, // C: noisy copy of B
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rng, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []ScoreType{AIC, BIC, BDeu} {
		learned, err := HillClimb(context.Background(), mem.New(tab), g.Names(), HillClimbConfig{Score: typ})
		if err != nil {
			t.Fatal(err)
		}
		ai, bi, ci := learned.Index("A"), learned.Index("B"), learned.Index("C")
		if !learned.Neighbors(ai, bi) || !learned.Neighbors(bi, ci) {
			t.Errorf("%v: chain edges missing: %v", typ, learned.Edges())
		}
		if learned.Neighbors(ai, ci) {
			t.Errorf("%v: spurious A–C edge", typ)
		}
	}
}

func TestHillClimbRecoversColliderSkeleton(t *testing.T) {
	// Single-operation greedy search reliably recovers the *skeleton* of a
	// collider but can orient it wrongly (a local optimum) — which is
	// precisely why the paper's CD algorithm outperforms the HC baselines
	// on parent recovery (Fig 5). We assert skeleton recovery here and
	// leave orientation quality to the Fig 5 experiment harness.
	rng := rand.New(rand.NewSource(4))
	bn := colliderNet(t)
	tab, err := bn.Sample(rng, 30000)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := HillClimb(context.Background(), mem.New(tab), bn.G.Names(), HillClimbConfig{Score: BIC})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]string{{"Z", "T"}, {"W", "T"}, {"T", "Y"}} {
		ui, vi := learned.Index(e[0]), learned.Index(e[1])
		if !learned.Neighbors(ui, vi) {
			t.Errorf("true edge %s–%s missing from learned skeleton", e[0], e[1])
		}
	}
}

func TestHillClimbRespectsMaxParents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := dag.RandomDAG(rng, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := dag.RandomBayesNet(rng, g, 2, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := HillClimb(context.Background(), mem.New(tab), g.Names(), HillClimbConfig{Score: AIC, MaxParents: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < learned.NumNodes(); i++ {
		if len(learned.Parents(i)) > 2 {
			t.Errorf("node %s has %d parents, cap 2", learned.Name(i), len(learned.Parents(i)))
		}
	}
}

func TestHillClimbValidation(t *testing.T) {
	tab := dummyTable(t, colliderDAG(t))
	if _, err := HillClimb(context.Background(), mem.New(tab), []string{"missing"}, HillClimbConfig{}); err == nil {
		t.Error("missing attribute accepted")
	}
}

func TestForEachSubset(t *testing.T) {
	items := []string{"a", "b", "c"}
	var got [][]string
	err := forEachSubset(items, 2, func(s []string) bool {
		got = append(got, append([]string(nil), s...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d subsets, want 3: %v", len(got), got)
	}
	// Early stop.
	count := 0
	if err := forEachSubset(items, 1, func(s []string) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("early stop visited %d subsets, want 1", count)
	}
	// k > n yields nothing.
	if err := forEachSubset(items, 5, func(s []string) bool { t.Error("unexpected call"); return true }); err != nil {
		t.Fatal(err)
	}
}

func containsAll(have []string, want ...string) bool {
	m := make(map[string]bool, len(have))
	for _, x := range have {
		m[x] = true
	}
	for _, x := range want {
		if !m[x] {
			return false
		}
	}
	return true
}

func itoa(v int) string {
	return string(rune('0' + v))
}
