package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"hypdb/internal/dataset"
	"hypdb/internal/query"
)

// AdultRows is the default row count, matching Table 1 (48,842 rows).
const AdultRows = 48842

// Adult generates the AdultData substitute (15 columns like the UCI census
// extract). The dependence structure mirrors the paper's findings (Fig 3
// top): income correlates strongly with gender (≈30% of men vs ≈11% of
// women earn >50K), but most of the gap is mediated by MaritalStatus —
// married people report much higher (household) income, and far more men
// in the data are married — followed by Education; the *direct* effect of
// gender is small. EducationNum is an FD peer of Education, and fnlwgt is
// key-like, exercising the logical-dependency dropping of Sec 4.
func Adult(n int, seed int64) (*dataset.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: Adult with %d rows", n)
	}
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder(
		"Age", "Workclass", "Fnlwgt", "Education", "EducationNum",
		"MaritalStatus", "Occupation", "Relationship", "Race", "Sex",
		"CapitalGain", "CapitalLoss", "HoursPerWeek", "NativeCountry", "Income",
	)

	educations := []string{"HS-grad", "SomeCollege", "Bachelors", "Masters"}
	eduNums := []string{"9", "10", "13", "14"} // FD: Education ⇒ EducationNum
	workclasses := []string{"Private", "SelfEmp", "Gov"}
	occupations := []string{"Craft", "Sales", "Exec", "Clerical", "Service"}
	races := []string{"White", "Black", "Asian", "Other"}
	countries := []string{"US", "MX", "PH", "DE"}

	row := make([]string, 15)
	for i := 0; i < n; i++ {
		male := rng.Float64() < 0.667 // 2:1 male in the census extract
		ageBand := rng.Intn(5)        // 0:18-25 … 4:60+

		// MaritalStatus | Sex, Age: the inconsistency the paper surfaces —
		// married males dominate the data (61% vs 15%).
		pMarried := 0.15
		if male {
			pMarried = 0.61
		}
		if ageBand == 0 {
			pMarried *= 0.3
		}
		married := rng.Float64() < pMarried

		// Education | Sex: males slightly more likely to hold degrees.
		eduIdx := sampleIndex(rng, eduDist(male))

		// HoursPerWeek | Sex, MaritalStatus.
		hoursHigh := rng.Float64() < hoursHighProb(male, married)

		// CapitalGain | MaritalStatus (household effects).
		capGain := rng.Float64() < 0.06+0.05*b2f(married)

		// Income | MaritalStatus, Education, Hours, CapitalGain, Sex, Age.
		p := 0.005 +
			0.26*b2f(married) +
			0.045*float64(eduIdx) +
			0.05*b2f(hoursHigh) +
			0.09*b2f(capGain) +
			0.02*b2f(male) + // the small direct effect
			0.01*float64(ageBand)
		income := bernoulli(rng, p)

		sex := "Female"
		if male {
			sex = "Male"
		}
		ms := "Single"
		if married {
			ms = "Married"
		}
		hours := "30-40"
		if hoursHigh {
			hours = "40+"
		}
		cg := "0"
		if capGain {
			cg = ">0"
		}

		row[0] = strconv.Itoa(18 + ageBand*10 + rng.Intn(3)) // Age bands with jitter
		row[1] = workclasses[rng.Intn(len(workclasses))]
		row[2] = strconv.Itoa(10000 + i) // Fnlwgt: key-like
		row[3] = educations[eduIdx]
		row[4] = eduNums[eduIdx] // FD with Education
		row[5] = ms
		row[6] = occupations[(eduIdx+rng.Intn(3))%len(occupations)]
		row[7] = relationship(rng, married)
		row[8] = races[sampleIndex(rng, []float64{0.85, 0.09, 0.04, 0.02})]
		row[9] = sex
		row[10] = cg
		row[11] = chooseStr(rng, 0.05, ">0", "0")
		row[12] = hours
		row[13] = countries[sampleIndex(rng, []float64{0.9, 0.05, 0.03, 0.02})]
		row[14] = strconv.Itoa(income)
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	return b.Table()
}

// AdultQuery is the Fig 3 (top) query: average income by gender.
func AdultQuery() query.Query {
	return query.Query{
		Table:     "AdultData",
		Treatment: "Sex",
		Outcomes:  []string{"Income"},
	}
}

func eduDist(male bool) []float64 {
	if male {
		return []float64{0.38, 0.28, 0.24, 0.10}
	}
	return []float64{0.46, 0.30, 0.18, 0.06}
}

func hoursHighProb(male, married bool) float64 {
	p := 0.25
	if male {
		p += 0.20
	}
	if married {
		p += 0.10
	}
	return p
}

// relationship is deliberately gender-neutral (Spouse vs non-spouse
// categories): the raw census values Husband/Wife would deterministically
// encode the treatment, and HypDB would (correctly) route all marital
// mediation through Relationship instead of MaritalStatus. The structural
// finding the paper reports — marriage carries most of the income gap — is
// preserved with MaritalStatus as its carrier.
func relationship(rng *rand.Rand, married bool) string {
	if married {
		return chooseStr(rng, 0.95, "Spouse", "NotInFamily")
	}
	return chooseStr(rng, 0.3, "OwnChild", "NotInFamily")
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func chooseStr(rng *rand.Rand, p float64, a, b string) string {
	if rng.Float64() < p {
		return a
	}
	return b
}
