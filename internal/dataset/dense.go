package dataset

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// DefaultCellBudget bounds the size of a dense count tabulation: when the
// product of the grouped attributes' cardinalities exceeds this many cells,
// the engine falls back to sparse (map-keyed) counting. 2^22 cells is 32 MiB
// of int64 counters — large enough for every contingency table the paper's
// workloads produce, small enough to tabulate without memory pressure.
const DefaultCellBudget = 1 << 22

// minDenseCells is the cell space below which dense tabulation always wins
// regardless of row count.
const minDenseCells = 1 << 12

// denseRowFactor caps the cell space relative to the data size: a dense
// view with far more cells than rows is mostly zeros, and the O(cells)
// passes (tabulation tail, Map, marginalization) would dominate the
// O(rows) work the sparse path does. 64 keeps the dense win on every
// contingency-table-shaped workload while bounding the empty-cell overhead
// of one pass to 64 words per row.
const denseRowFactor = 64

// EffectiveBudget tightens a cell budget (≤ 0 meaning DefaultCellBudget)
// by the row count of the data about to be tabulated, so sparse
// high-cardinality data never trades an O(rows) hash count for a larger
// O(cells) scan.
func EffectiveBudget(budget, rows int) int {
	if budget <= 0 {
		budget = DefaultCellBudget
	}
	rowCap := minDenseCells
	if rows > 0 && rows > rowCap/denseRowFactor {
		rowCap = rows * denseRowFactor
		if rowCap/denseRowFactor != rows || rowCap < 0 {
			return budget // overflow: row cap is unbounded
		}
	}
	if rowCap < budget {
		return rowCap
	}
	return budget
}

// parallelMinRows is the row count below which a parallel tabulation is not
// worth the goroutine fan-out.
const parallelMinRows = 1 << 15

// parallelMaxCells bounds the per-worker scratch slab of the parallel scan:
// above this, workers' private copies of the cell array would dominate the
// cost and the scan stays serial.
const parallelMaxCells = 1 << 18

// tabulateBlock is the row-block size of the column-wise tabulation loop; it
// bounds the per-block index buffer so it stays cache-resident.
const tabulateBlock = 1 << 12

// DenseCounts is the flat, dictionary-coded tabulation of group-by counts
// over a fixed attribute list: the sufficient statistic everything in HypDB
// (entropies, χ²/MIT tests, covariate scoring, query rewriting) reduces to,
// stored as an OLAP-cube view rather than a hash map.
//
// Cell layout is mixed-radix with the first attribute fastest:
//
//	cell(c0, c1, …, ck) = c0 + Cards[0]·(c1 + Cards[1]·(c2 + …))
//
// so the stride of attribute j is the product of the cardinalities before
// it. Cells holds one counter per cell of the cross product, including
// combinations that never occur (count zero) — which is what makes
// marginalization a single O(cells) pass with no key decoding.
type DenseCounts struct {
	// Attrs names the grouped attributes, in tabulation order.
	Attrs []string
	// Cards holds the dictionary cardinality (radix) of each attribute.
	Cards []int
	// Cells is the flat counter array of length ∏ Cards (length 1 when
	// Attrs is empty: the single global count).
	Cells []int
	// Total is the number of tabulated rows (the sum of Cells).
	Total int
}

// DenseSize returns the number of cells of a dense tabulation over the given
// cardinalities, and whether it fits the budget (overflow-safe). A budget
// ≤ 0 means DefaultCellBudget.
func DenseSize(cards []int, budget int) (int, bool) {
	if budget <= 0 {
		budget = DefaultCellBudget
	}
	size := 1
	for _, c := range cards {
		if c <= 0 {
			return 0, false
		}
		if size > budget/c {
			return 0, false
		}
		size *= c
	}
	return size, size <= budget
}

// NewDenseCounts allocates an all-zero dense view over the given attributes
// and cardinalities.
func NewDenseCounts(attrs []string, cards []int) (*DenseCounts, error) {
	if len(attrs) != len(cards) {
		return nil, fmt.Errorf("dataset: %d attributes but %d cardinalities", len(attrs), len(cards))
	}
	size := 1
	for _, c := range cards {
		if c <= 0 {
			return nil, fmt.Errorf("dataset: non-positive cardinality %d", c)
		}
		if size > (1<<40)/c {
			return nil, fmt.Errorf("dataset: dense view over %v overflows", cards)
		}
		size *= c
	}
	return &DenseCounts{
		Attrs: append([]string(nil), attrs...),
		Cards: append([]int(nil), cards...),
		Cells: make([]int, size),
	}, nil
}

// AddKey accumulates a sparse (GroupKey-coded) count into the dense view.
// The key must carry one code per attribute, each within its dictionary.
func (d *DenseCounts) AddKey(k GroupKey, count int) error {
	if k.Fields() != len(d.Cards) {
		return fmt.Errorf("dataset: key with %d fields into dense view over %d attributes", k.Fields(), len(d.Cards))
	}
	idx := 0
	stride := 1
	for i, card := range d.Cards {
		code := int(k.Field(i))
		if code < 0 || code >= card {
			return fmt.Errorf("dataset: code %d of %q outside dictionary of size %d", code, d.Attrs[i], card)
		}
		idx += stride * code
		stride *= card
	}
	d.Cells[idx] += count
	d.Total += count
	return nil
}

// NonZero returns the number of occupied cells — the distinct count
// |Π_attrs(D)| of the paper.
func (d *DenseCounts) NonZero() int {
	n := 0
	for _, c := range d.Cells {
		if c > 0 {
			n++
		}
	}
	return n
}

// Key materializes the composite GroupKey of one cell index, in the
// canonical 4-byte little-endian layout of EncodeKey.
func (d *DenseCounts) Key(cell int) GroupKey {
	buf := make([]byte, 0, 4*len(d.Cards))
	for _, card := range d.Cards {
		code := int32(cell % card)
		cell /= card
		buf = append(buf, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
	}
	return GroupKey(buf)
}

// Map renders the occupied cells as the sparse map form used by the
// source.Relation contract. Keys are encoded exactly as EncodeKey over the
// per-attribute codes, so dense- and map-produced keys are interchangeable.
func (d *DenseCounts) Map() map[GroupKey]int {
	out := make(map[GroupKey]int, d.NonZero())
	odo := make([]int32, len(d.Cards))
	buf := make([]byte, 4*len(d.Cards))
	for _, c := range d.Cells {
		if c > 0 {
			for i, code := range odo {
				off := 4 * i
				buf[off] = byte(code)
				buf[off+1] = byte(code >> 8)
				buf[off+2] = byte(code >> 16)
				buf[off+3] = byte(code >> 24)
			}
			out[GroupKey(buf)] += c
		}
		increment(odo, d.Cards)
	}
	return out
}

// increment advances a mixed-radix odometer (first digit fastest).
func increment(odo []int32, cards []int) {
	for i := range odo {
		odo[i]++
		if int(odo[i]) < cards[i] {
			return
		}
		odo[i] = 0
	}
}

// Project marginalizes the view onto the attributes at positions keep, in
// the given order: cells of the result sum every input cell agreeing on the
// kept codes. This is the O(cells) marginalization kernel that replaces
// per-cell key re-encoding: one pass, no allocations beyond the output.
func (d *DenseCounts) Project(keep []int) (*DenseCounts, error) {
	attrs := make([]string, len(keep))
	cards := make([]int, len(keep))
	seen := make(map[int]bool, len(keep))
	for i, p := range keep {
		if p < 0 || p >= len(d.Cards) {
			return nil, fmt.Errorf("dataset: projection position %d outside view over %d attributes", p, len(d.Cards))
		}
		if seen[p] {
			return nil, fmt.Errorf("dataset: duplicate projection position %d", p)
		}
		seen[p] = true
		attrs[i] = d.Attrs[p]
		cards[i] = d.Cards[p]
	}
	out, err := NewDenseCounts(attrs, cards)
	if err != nil {
		return nil, err
	}
	out.Total = d.Total

	// outStride[p] is the contribution of source attribute p to the output
	// cell index (zero for summed-out attributes).
	outStride := make([]int, len(d.Cards))
	stride := 1
	for i, p := range keep {
		outStride[p] = stride
		stride *= cards[i]
	}
	odo := make([]int32, len(d.Cards))
	outIdx := 0
	for _, c := range d.Cells {
		if c != 0 {
			out.Cells[outIdx] += c
		}
		// Advance the odometer and incrementally maintain the output index.
		for i := range odo {
			odo[i]++
			outIdx += outStride[i]
			if int(odo[i]) < d.Cards[i] {
				break
			}
			outIdx -= outStride[i] * d.Cards[i]
			odo[i] = 0
		}
	}
	return out, nil
}

// Grown returns a copy of the view re-strided to the given (element-wise ≥)
// cardinalities, preserving every count at its original codes. It is the
// cell-layout half of delta application under a growing dictionary: labels
// are only ever appended to a dictionary, so an old view's cell (c0,…,ck)
// keeps exactly those codes in the enlarged space — only the strides move.
func (d *DenseCounts) Grown(cards []int) (*DenseCounts, error) {
	if len(cards) != len(d.Cards) {
		return nil, fmt.Errorf("dataset: grow to %d cardinalities, view has %d", len(cards), len(d.Cards))
	}
	for i, c := range cards {
		if c < d.Cards[i] {
			return nil, fmt.Errorf("dataset: attribute %s cannot shrink from %d to %d", d.Attrs[i], d.Cards[i], c)
		}
	}
	out, err := NewDenseCounts(d.Attrs, cards)
	if err != nil {
		return nil, err
	}
	out.Total = d.Total

	outStride := make([]int, len(d.Cards))
	stride := 1
	for i, c := range cards {
		outStride[i] = stride
		stride *= c
	}
	odo := make([]int32, len(d.Cards))
	outIdx := 0
	for _, c := range d.Cells {
		if c != 0 {
			out.Cells[outIdx] = c
		}
		for i := range odo {
			odo[i]++
			outIdx += outStride[i]
			if int(odo[i]) < d.Cards[i] {
				break
			}
			outIdx -= outStride[i] * d.Cards[i]
			odo[i] = 0
		}
	}
	return out, nil
}

// AddCells accumulates another view with the same attributes and
// cardinalities into d — the additive merge of sufficient statistics over
// disjoint row sets.
func (d *DenseCounts) AddCells(other *DenseCounts) error {
	if len(other.Cards) != len(d.Cards) {
		return fmt.Errorf("dataset: add %d-attribute view into %d-attribute view", len(other.Cards), len(d.Cards))
	}
	for i := range d.Cards {
		if d.Attrs[i] != other.Attrs[i] || d.Cards[i] != other.Cards[i] {
			return fmt.Errorf("dataset: layouts differ at %d: (%s,%d) vs (%s,%d)",
				i, d.Attrs[i], d.Cards[i], other.Attrs[i], other.Cards[i])
		}
	}
	for i, c := range other.Cells {
		d.Cells[i] += c
	}
	d.Total += other.Total
	return nil
}

// ProjectKeys marginalizes a sparse coded count map onto the given key
// fields, in order — the sparse counterpart of DenseCounts.Project, shared
// by the OLAP cube and the materialized entropy provider for views too wide
// to tabulate densely.
func ProjectKeys(counts map[GroupKey]int, fields []int) map[GroupKey]int {
	out := make(map[GroupKey]int, len(counts)/2+1)
	buf := make([]byte, 0, 4*len(fields))
	for k, c := range counts {
		buf = buf[:0]
		for _, f := range fields {
			off := 4 * f
			buf = append(buf, k[off], k[off+1], k[off+2], k[off+3])
		}
		out[GroupKey(buf)] += c
	}
	return out
}

// DenseCounts tabulates the frequency of each composite value of attrs into
// a dense mixed-radix view with zero per-row allocations. It fails when the
// cell space ∏ Card(attr) cannot be allocated; budget-aware callers should
// check DenseSize first (Table.Counts does, via DefaultCellBudget).
func (t *Table) DenseCounts(attrs ...string) (*DenseCounts, error) {
	return t.DenseCountsMatching(nil, attrs...)
}

// DenseCountsMatching is DenseCounts restricted to the rows matching pred
// (all rows when pred is nil). Codes refer to this table's dictionaries —
// no compaction — mirroring CountsMatching.
func (t *Table) DenseCountsMatching(pred Predicate, attrs ...string) (*DenseCounts, error) {
	cols := make([]*Column, len(attrs))
	for i, a := range attrs {
		c, err := t.Column(a)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	var match []bool
	if pred != nil {
		var err error
		match, err = pred.Eval(t)
		if err != nil {
			return nil, err
		}
	}
	return t.denseTabulate(cols, attrs, match)
}

// denseTabulate is the mixed-radix count kernel: a chunked scan over the
// code vectors accumulating directly into the flat cell array, fanned out
// over GOMAXPROCS workers (each with a private slab, merged at the end) when
// the table is large and the cell space small enough.
func (t *Table) denseTabulate(cols []*Column, attrs []string, match []bool) (*DenseCounts, error) {
	cards := make([]int, len(cols))
	size := 1
	for i, c := range cols {
		cards[i] = c.Card()
		if cards[i] <= 0 {
			// A column with an empty dictionary has no rows; the view is a
			// single empty cell space.
			if t.numRows == 0 {
				return &DenseCounts{Attrs: append([]string(nil), attrs...), Cards: cards, Cells: nil}, nil
			}
			return nil, fmt.Errorf("dataset: column %q has empty dictionary but %d rows", c.Name, t.numRows)
		}
		if size > (1<<31-1)/cards[i] {
			return nil, fmt.Errorf("dataset: dense tabulation over %v cells overflows; use the sparse path", cards)
		}
		size *= cards[i]
	}
	dc := &DenseCounts{
		Attrs: append([]string(nil), attrs...),
		Cards: cards,
		Cells: make([]int, size),
	}
	strides := make([]int32, len(cols))
	s := int32(1)
	for i, card := range cards {
		strides[i] = s
		s *= int32(card)
	}

	rows := t.numRows
	workers := runtime.GOMAXPROCS(0)
	if rows >= parallelMinRows && size <= parallelMaxCells && workers > 1 {
		if workers > 8 {
			workers = 8
		}
		chunk := (rows + workers - 1) / workers
		slabs := make([][]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > rows {
				hi = rows
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				slab := make([]int, size)
				tabulateRange(cols, strides, match, lo, hi, slab)
				slabs[w] = slab
			}(w, lo, hi)
		}
		wg.Wait()
		for _, slab := range slabs {
			if slab == nil {
				continue
			}
			for i, v := range slab {
				dc.Cells[i] += v
			}
		}
	} else {
		tabulateRange(cols, strides, match, 0, rows, dc.Cells)
	}
	for _, v := range dc.Cells {
		dc.Total += v
	}
	return dc, nil
}

// tabulateRange accumulates rows [lo, hi) into cells, block by block: the
// mixed-radix index of each row is built column-wise into a small reusable
// buffer (sequential reads of each code vector), then scattered into the
// cell array.
func tabulateRange(cols []*Column, strides []int32, match []bool, lo, hi int, cells []int) {
	if len(cols) == 0 {
		n := 0
		if match == nil {
			n = hi - lo
		} else {
			for i := lo; i < hi; i++ {
				if match[i] {
					n++
				}
			}
		}
		if len(cells) > 0 {
			cells[0] += n
		}
		return
	}
	var idx [tabulateBlock]int32
	for blockLo := lo; blockLo < hi; blockLo += tabulateBlock {
		blockHi := blockLo + tabulateBlock
		if blockHi > hi {
			blockHi = hi
		}
		n := blockHi - blockLo
		first := cols[0].codes[blockLo:blockHi]
		for i := 0; i < n; i++ {
			idx[i] = first[i]
		}
		for j := 1; j < len(cols); j++ {
			stride := strides[j]
			codes := cols[j].codes[blockLo:blockHi]
			for i := 0; i < n; i++ {
				idx[i] += stride * codes[i]
			}
		}
		if match == nil {
			for i := 0; i < n; i++ {
				cells[idx[i]]++
			}
		} else {
			m := match[blockLo:blockHi]
			for i := 0; i < n; i++ {
				if m[i] {
					cells[idx[i]]++
				}
			}
		}
	}
}

// denseWithin tabulates over cols when the cell space fits the budget; ok is
// false when the sparse path must be used instead.
func (t *Table) denseWithin(cols []*Column, attrs []string, match []bool, budget int) (*DenseCounts, bool, error) {
	cards := make([]int, len(cols))
	for i, c := range cols {
		cards[i] = c.Card()
		if cards[i] == 0 && t.numRows > 0 {
			return nil, false, fmt.Errorf("dataset: column %q has empty dictionary but %d rows", c.Name, t.numRows)
		}
	}
	if t.numRows == 0 {
		dc := &DenseCounts{Attrs: append([]string(nil), attrs...), Cards: cards}
		if size, ok := DenseSize(cards, budget); ok {
			dc.Cells = make([]int, size)
		}
		return dc, true, nil
	}
	if _, ok := DenseSize(cards, EffectiveBudget(budget, t.numRows)); !ok {
		return nil, false, nil
	}
	dc, err := t.denseTabulate(cols, attrs, match)
	if err != nil {
		return nil, false, err
	}
	return dc, true, nil
}

// sortGroups orders groups deterministically by composite key, matching the
// historical map-path ordering.
func sortGroups(groups []Group) {
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
}
