package dataset

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	b := NewBuilder("carrier", "airport", "delayed")
	rows := [][]string{
		{"AA", "COS", "0"},
		{"AA", "MFE", "0"},
		{"AA", "COS", "1"},
		{"UA", "ROC", "1"},
		{"UA", "ROC", "0"},
		{"UA", "COS", "1"},
	}
	for _, r := range rows {
		b.MustAdd(r...)
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	return tab
}

func TestColumnDictionaryEncoding(t *testing.T) {
	c := NewColumnFromStrings("x", []string{"a", "b", "a", "c", "b"})
	if got := c.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	if got := c.Card(); got != 3 {
		t.Fatalf("Card = %d, want 3", got)
	}
	if c.Code(0) != c.Code(2) {
		t.Errorf("same label got different codes: %d vs %d", c.Code(0), c.Code(2))
	}
	if c.Code(0) == c.Code(1) {
		t.Errorf("different labels got same code %d", c.Code(0))
	}
	for i, want := range []string{"a", "b", "a", "c", "b"} {
		if got := c.Value(i); got != want {
			t.Errorf("Value(%d) = %q, want %q", i, got, want)
		}
	}
	if got := c.CodeOf("missing"); got != -1 {
		t.Errorf("CodeOf(missing) = %d, want -1", got)
	}
}

func TestNewColumnFromCodesValidation(t *testing.T) {
	if _, err := NewColumnFromCodes("x", []int32{0, 5}, []string{"a", "b"}); err == nil {
		t.Error("out-of-range code accepted")
	}
	if _, err := NewColumnFromCodes("x", []int32{0}, []string{"a", "a"}); err == nil {
		t.Error("duplicate labels accepted")
	}
	c, err := NewColumnFromCodes("x", []int32{1, 0}, []string{"a", "b"})
	if err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if c.Value(0) != "b" || c.Value(1) != "a" {
		t.Errorf("decoded values %q,%q want b,a", c.Value(0), c.Value(1))
	}
}

func TestNewRejectsRaggedAndDuplicate(t *testing.T) {
	a := NewColumnFromStrings("a", []string{"1", "2"})
	short := NewColumnFromStrings("b", []string{"1"})
	if _, err := New(a, short); err == nil {
		t.Error("ragged columns accepted")
	}
	a2 := NewColumnFromStrings("a", []string{"3", "4"})
	if _, err := New(a, a2); err == nil {
		t.Error("duplicate column name accepted")
	}
	if _, err := New(); err == nil {
		t.Error("empty table accepted")
	}
}

func TestSelectIn(t *testing.T) {
	tab := sampleTable(t)
	got, err := tab.Select(In{Attr: "carrier", Values: []string{"AA"}})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", got.NumRows())
	}
	c := got.MustColumn("carrier")
	for i := 0; i < got.NumRows(); i++ {
		if c.Value(i) != "AA" {
			t.Errorf("row %d carrier = %q, want AA", i, c.Value(i))
		}
	}
	// Dictionary must be compacted: only AA remains.
	if c.Card() != 1 {
		t.Errorf("carrier Card after select = %d, want 1", c.Card())
	}
}

func TestSelectAndOrNot(t *testing.T) {
	tab := sampleTable(t)
	got, err := tab.Select(And{
		In{Attr: "carrier", Values: []string{"UA"}},
		Eq{Attr: "delayed", Value: "1"},
	})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if got.NumRows() != 2 {
		t.Errorf("AND rows = %d, want 2", got.NumRows())
	}

	got, err = tab.Select(Or{
		Eq{Attr: "airport", Value: "MFE"},
		Eq{Attr: "airport", Value: "ROC"},
	})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if got.NumRows() != 3 {
		t.Errorf("OR rows = %d, want 3", got.NumRows())
	}

	got, err = tab.Select(Not{Eq{Attr: "carrier", Value: "AA"}})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if got.NumRows() != 3 {
		t.Errorf("NOT rows = %d, want 3", got.NumRows())
	}

	got, err = tab.Select(All{})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if got.NumRows() != tab.NumRows() {
		t.Errorf("All rows = %d, want %d", got.NumRows(), tab.NumRows())
	}
}

func TestSelectMissingValueMatchesNothing(t *testing.T) {
	tab := sampleTable(t)
	got, err := tab.Select(Eq{Attr: "carrier", Value: "DL"})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", got.NumRows())
	}
}

func TestSelectMissingColumnErrors(t *testing.T) {
	tab := sampleTable(t)
	if _, err := tab.Select(Eq{Attr: "nope", Value: "x"}); err == nil {
		t.Error("missing column accepted")
	}
}

func TestPredicateSQL(t *testing.T) {
	cases := []struct {
		pred Predicate
		want string
	}{
		{In{Attr: "a", Values: []string{"x", "y"}}, "a IN ('x','y')"},
		{Eq{Attr: "a", Value: "x"}, "a = 'x'"},
		{And{Eq{Attr: "a", Value: "x"}, Eq{Attr: "b", Value: "y"}}, "a = 'x' AND b = 'y'"},
		{And{}, "TRUE"},
		{Or{}, "FALSE"},
		{Not{Eq{Attr: "a", Value: "x"}}, "NOT (a = 'x')"},
		{All{}, "TRUE"},
	}
	for _, tc := range cases {
		if got := tc.pred.SQL(); got != tc.want {
			t.Errorf("SQL() = %q, want %q", got, tc.want)
		}
	}
}

func TestProjectAndDrop(t *testing.T) {
	tab := sampleTable(t)
	p, err := tab.Project("delayed", "carrier")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if got := p.Columns(); !reflect.DeepEqual(got, []string{"delayed", "carrier"}) {
		t.Errorf("Columns = %v", got)
	}
	d, err := tab.Drop("airport")
	if err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if d.HasColumn("airport") {
		t.Error("airport still present after Drop")
	}
	if _, err := tab.Drop("nope"); err == nil {
		t.Error("dropping missing column accepted")
	}
	if _, err := tab.Drop("carrier", "airport", "delayed"); err == nil {
		t.Error("dropping all columns accepted")
	}
}

func TestGroupBy(t *testing.T) {
	tab := sampleTable(t)
	groups, enc, err := tab.GroupBy("carrier")
	if err != nil {
		t.Fatalf("GroupBy: %v", err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g.Rows)
		dec := enc.Decode(g.Key)
		if len(dec) != 1 || !strings.HasPrefix(dec[0], "carrier=") {
			t.Errorf("Decode = %v", dec)
		}
	}
	if total != tab.NumRows() {
		t.Errorf("group sizes sum to %d, want %d", total, tab.NumRows())
	}
}

func TestGroupByMultiAttributeNoCollisions(t *testing.T) {
	// Two attributes whose concatenated labels could collide ("a"+"bc" vs
	// "ab"+"c") must still land in different groups.
	b := NewBuilder("x", "y")
	b.MustAdd("a", "bc")
	b.MustAdd("ab", "c")
	b.MustAdd("a", "bc")
	tab, err := b.Table()
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	groups, _, err := tab.GroupBy("x", "y")
	if err != nil {
		t.Fatalf("GroupBy: %v", err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	sizes := []int{len(groups[0].Rows), len(groups[1].Rows)}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Errorf("group sizes = %v, want [1 2]", sizes)
	}
}

func TestGroupByEmptyAttrsSingleGroup(t *testing.T) {
	tab := sampleTable(t)
	groups, _, err := tab.GroupBy()
	if err != nil {
		t.Fatalf("GroupBy: %v", err)
	}
	if len(groups) != 1 || len(groups[0].Rows) != tab.NumRows() {
		t.Errorf("GroupBy() = %d groups, first size %d", len(groups), len(groups[0].Rows))
	}
}

func TestKeyEncoderCodesRoundTrip(t *testing.T) {
	tab := sampleTable(t)
	enc, err := NewKeyEncoder(tab, []string{"carrier", "airport"})
	if err != nil {
		t.Fatalf("NewKeyEncoder: %v", err)
	}
	for i := 0; i < tab.NumRows(); i++ {
		k := enc.Key(i)
		codes := enc.Codes(k)
		if codes[0] != tab.MustColumn("carrier").Code(i) || codes[1] != tab.MustColumn("airport").Code(i) {
			t.Errorf("row %d: Codes(Key) = %v, want column codes", i, codes)
		}
	}
}

func TestCountsAndDistinctCount(t *testing.T) {
	tab := sampleTable(t)
	counts, _, err := tab.Counts("airport")
	if err != nil {
		t.Fatalf("Counts: %v", err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tab.NumRows() {
		t.Errorf("counts sum = %d, want %d", total, tab.NumRows())
	}
	n, err := tab.DistinctCount("airport")
	if err != nil {
		t.Fatalf("DistinctCount: %v", err)
	}
	if n != 3 {
		t.Errorf("DistinctCount(airport) = %d, want 3", n)
	}
}

func TestFloat(t *testing.T) {
	tab := sampleTable(t)
	vals, err := tab.Float("delayed")
	if err != nil {
		t.Fatalf("Float: %v", err)
	}
	want := []float64{0, 0, 1, 1, 0, 1}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("Float = %v, want %v", vals, want)
	}
	if _, err := tab.Float("carrier"); err == nil {
		t.Error("non-numeric column parsed as float")
	}
}

func TestSelectRowsValidation(t *testing.T) {
	tab := sampleTable(t)
	if _, err := tab.SelectRows([]int{0, 99}); err == nil {
		t.Error("out-of-range row accepted")
	}
	got, err := tab.SelectRows([]int{5, 0})
	if err != nil {
		t.Fatalf("SelectRows: %v", err)
	}
	if got.MustColumn("airport").Value(0) != "COS" || got.MustColumn("carrier").Value(1) != "AA" {
		t.Error("SelectRows did not preserve requested order")
	}
}

func TestAppendRow(t *testing.T) {
	tab := sampleTable(t)
	if err := tab.AppendRow("DL", "JFK", "0"); err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	if tab.NumRows() != 7 {
		t.Errorf("NumRows = %d, want 7", tab.NumRows())
	}
	if tab.MustColumn("carrier").Value(6) != "DL" {
		t.Error("appended row not readable")
	}
	if err := tab.AppendRow("too", "few"); err == nil {
		t.Error("short row accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := sampleTable(t)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatalf("round trip shape %dx%d, want %dx%d",
			back.NumRows(), back.NumCols(), tab.NumRows(), tab.NumCols())
	}
	for _, name := range tab.Columns() {
		a, b := tab.MustColumn(name), back.MustColumn(name)
		for i := 0; i < tab.NumRows(); i++ {
			if a.Value(i) != b.Value(i) {
				t.Fatalf("col %s row %d: %q != %q", name, i, a.Value(i), b.Value(i))
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	tab := sampleTable(t)
	path := t.TempDir() + "/t.csv"
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Errorf("rows = %d, want %d", back.NumRows(), tab.NumRows())
	}
}

func TestReadCSVRagged(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
}

// Property: selecting with a random In predicate keeps exactly the matching
// rows, in their original relative order.
func TestQuickSelectPreservesMatchingRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = strconv.Itoa(r.Intn(5))
		}
		tab := MustNew(NewColumnFromStrings("v", vals))
		pick := strconv.Itoa(r.Intn(5))
		sel, err := tab.Select(Eq{Attr: "v", Value: pick})
		if err != nil {
			return false
		}
		var want []string
		for _, v := range vals {
			if v == pick {
				want = append(want, v)
			}
		}
		if sel.NumRows() != len(want) {
			return false
		}
		c := sel.MustColumn("v")
		for i := range want {
			if c.Value(i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: group sizes always partition the table.
func TestQuickGroupByPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := make([]string, n)
		b := make([]string, n)
		for i := range a {
			a[i] = strconv.Itoa(r.Intn(4))
			b[i] = strconv.Itoa(r.Intn(3))
		}
		tab := MustNew(NewColumnFromStrings("a", a), NewColumnFromStrings("b", b))
		groups, _, err := tab.GroupBy("a", "b")
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, g := range groups {
			for _, row := range g.Rows {
				if seen[row] {
					return false // row in two groups
				}
				seen[row] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
