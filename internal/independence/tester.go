package independence

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"hypdb/internal/contingency"
	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/internal/stats"
	"hypdb/source"
)

// Result reports the outcome of one conditional-independence test.
type Result struct {
	// MI is the estimated conditional mutual information Î(X;Y|Z) in nats.
	MI float64
	// PValue is the p-value of the null hypothesis I(X;Y|Z) = 0.
	PValue float64
	// PValueCI is the 95% half-width around PValue when the p-value itself
	// is a Monte-Carlo estimate (MIT); zero for parametric tests.
	PValueCI float64
	// DF is the degrees of freedom used (parametric tests only).
	DF int
	// Method names the procedure that produced the result.
	Method string
	// Groups is the number of conditioning groups actually tested.
	Groups int
}

// Tester decides conditional independence X ⊥⊥ Y | Z on a relation. The
// context cancels long-running tests: Monte-Carlo testers check it between
// permutation replicates and return ctx.Err() wrapped in the test error.
// Counts-based testers (ChiSquare, MIT, HyMIT) work on any source.Relation;
// Shuffle needs rows and fails with ErrNeedsMaterialization on counts-only
// backends.
type Tester interface {
	Test(ctx context.Context, rel source.Relation, x, y string, z []string) (Result, error)
}

// Decision applies the significance level: independent iff p ≥ alpha.
func Decision(r Result, alpha float64) bool { return r.PValue >= alpha }

// DefaultAlpha is the significance level used in all of the paper's
// statistical tests (Sec 7.3).
const DefaultAlpha = 0.01

// ---------------------------------------------------------------------------
// Chi-squared (G-test)

// ChiSquare is the parametric test: G = 2n·Î(X;Y|Z) against the χ²
// distribution with (|Π_X|−1)(|Π_Y|−1)|Π_Z| degrees of freedom.
type ChiSquare struct {
	// Provider supplies entropies; when nil a relation-backed provider with
	// the configured estimator is built per call.
	Provider EntropyProvider
	Est      stats.Estimator
}

// Test implements Tester.
func (c ChiSquare) Test(ctx context.Context, rel source.Relation, x, y string, z []string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := ensureAttrs(rel, x, y, z); err != nil {
		return Result{}, err
	}
	p := c.Provider
	if p == nil {
		rp, err := NewRelationProvider(ctx, rel, c.Est)
		if err != nil {
			return Result{}, err
		}
		p = rp
	}
	if p.NumRows() == 0 {
		return Result{}, fmt.Errorf("independence: %w", hyperr.ErrEmptyTable)
	}
	mi, err := ConditionalMI(ctx, p, x, y, z)
	if err != nil {
		return Result{}, err
	}
	df, err := DegreesOfFreedom(ctx, p, x, y, z)
	if err != nil {
		return Result{}, err
	}
	pv, err := stats.GTestPValue(mi, p.NumRows(), df)
	if err != nil {
		return Result{}, err
	}
	groups, err := p.DistinctCount(ctx, z)
	if err != nil {
		return Result{}, err
	}
	return Result{MI: mi, PValue: pv, DF: df, Method: "chi2", Groups: groups}, nil
}

// ---------------------------------------------------------------------------
// MIT: Monte-Carlo permutation test over contingency tables (Alg 2)

// MIT is the paper's optimized permutation test. Instead of reshuffling the
// data it draws, per conditioning group z, random contingency tables with
// the observed marginals (Patefield's algorithm) and aggregates their
// mutual informations with weights Pr(z). The observed tables are built
// from one group-by count query over (Z, X, Y) — the statistic needs no
// row-level access, which is what lets it run against pushed-down SQL
// aggregation.
type MIT struct {
	// Permutations is the number of Monte-Carlo replicates m (Alg 2).
	// Zero means DefaultPermutations.
	Permutations int
	// Est selects the MI estimator applied to each table.
	Est stats.Estimator
	// SampleGroups enables the "sampling from groups" optimization (Sec 5):
	// the test is restricted to a weighted sample of conditioning groups of
	// size ⌈SampleFactor·ln(#groups)⌉.
	SampleGroups bool
	// SampleFactor is the c in c·ln(#groups); zero means
	// DefaultSampleFactor.
	SampleFactor float64
	// Seed makes the Monte-Carlo draw reproducible.
	Seed int64
	// Parallel fans replicates out over GOMAXPROCS workers. Results are
	// deterministic for a fixed seed either way.
	Parallel bool
}

// DefaultPermutations mirrors the paper's setup (1000 permutations for
// query-answer significance, Sec 7.1).
const DefaultPermutations = 1000

// DefaultSampleFactor scales the log-size of the group sample.
const DefaultSampleFactor = 8.0

// groupTable holds the observed (X,Y) contingency table of one z-group and
// its sampling weight.
type groupTable struct {
	table  *contingency.Table2
	prob   float64 // Pr(z), renormalized over kept groups
	weight float64 // w_i = Pr(z)·max(H(X|z), H(Y|z))
}

// Test implements Tester.
func (m MIT) Test(ctx context.Context, rel source.Relation, x, y string, z []string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := ensureAttrs(rel, x, y, z); err != nil {
		return Result{}, err
	}
	perms := m.Permutations
	if perms <= 0 {
		perms = DefaultPermutations
	}

	groups, err := buildGroupTables(ctx, rel, x, y, z)
	if err != nil {
		return Result{}, err
	}
	total := len(groups)
	if total == 0 {
		return Result{}, fmt.Errorf("independence: %w", hyperr.ErrEmptyTable)
	}

	// Informative groups are those where both X and Y vary; all others have
	// MI identically zero under every permutation.
	informative := groups[:0]
	for _, g := range groups {
		if g.weight > 0 {
			informative = append(informative, g)
		}
	}
	if len(informative) == 0 {
		return Result{MI: 0, PValue: 1, Method: m.methodName(), Groups: 0}, nil
	}
	groups = informative

	if m.SampleGroups {
		factor := m.SampleFactor
		if factor <= 0 {
			factor = DefaultSampleFactor
		}
		k := int(math.Ceil(factor * math.Log(float64(total)+1)))
		if k < 1 {
			k = 1
		}
		if k < len(groups) {
			groups = sampleGroups(groups, k, rand.New(rand.NewSource(m.Seed^0x5eed)))
		}
	}

	// Renormalize Pr(z) over the kept groups so the statistic remains a
	// proper expectation (Sec 3.3 note on renormalization after pruning).
	probSum := 0.0
	for _, g := range groups {
		probSum += g.prob
	}
	if probSum == 0 {
		return Result{MI: 0, PValue: 1, Method: m.methodName(), Groups: 0}, nil
	}
	for i := range groups {
		groups[i].prob /= probSum
	}

	// Observed statistic s0 over the kept groups.
	s0 := 0.0
	for _, g := range groups {
		s0 += g.prob * g.table.MI(m.Est)
	}

	// Permutation replicates.
	exceed, err := m.runReplicates(ctx, groups, perms, s0)
	if err != nil {
		return Result{}, err
	}
	pv := float64(exceed) / float64(perms)
	return Result{
		MI:       s0,
		PValue:   pv,
		PValueCI: stats.BinomialCI(pv, perms),
		Method:   m.methodName(),
		Groups:   len(groups),
	}, nil
}

func (m MIT) methodName() string {
	if m.SampleGroups {
		return "mit-sampling"
	}
	return "mit"
}

// replicateSeed derives the RNG seed of replicate r. Both the serial and
// the parallel execution paths seed every replicate independently from this
// function, which is what makes the Monte-Carlo p-value a pure function of
// (data, Seed, Permutations) — independent of Parallel and GOMAXPROCS.
func replicateSeed(seed int64, r int) int64 {
	return seed + int64(r)*0x9e3779b9
}

// runReplicates draws perms permutation replicates and counts how many
// reach the observed statistic.
func (m MIT) runReplicates(ctx context.Context, groups []groupTable, perms int, s0 float64) (int, error) {
	samplers := make([]*contingency.Sampler, len(groups))
	for i, g := range groups {
		s, err := contingency.NewSamplerFromTable(g.table)
		if err != nil {
			return 0, err
		}
		samplers[i] = s
	}

	replicate := func(rng *rand.Rand, scratch []*contingency.Table2) (float64, error) {
		si := 0.0
		for gi, g := range groups {
			if err := samplers[gi].Sample(rng, scratch[gi]); err != nil {
				return 0, err
			}
			si += g.prob * scratch[gi].MI(m.Est)
		}
		return si, nil
	}

	newScratch := func() []*contingency.Table2 {
		sc := make([]*contingency.Table2, len(groups))
		for i, g := range groups {
			sc[i] = g.table.Clone() // right shape; contents overwritten
		}
		return sc
	}

	if !m.Parallel {
		rng := rand.New(rand.NewSource(0)) // re-seeded per replicate below
		scratch := newScratch()
		exceed := 0
		for r := 0; r < perms; r++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			// Re-seed per replicate with the same derivation the parallel
			// path uses, so Parallel on/off and any GOMAXPROCS yield
			// identical p-values for one seed.
			rng.Seed(replicateSeed(m.Seed, r))
			si, err := replicate(rng, scratch)
			if err != nil {
				return 0, err
			}
			if si >= s0 {
				exceed++
			}
		}
		return exceed, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > perms {
		workers = perms
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		exceed   int
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(0))
			scratch := newScratch()
			local := 0
			for r := w; r < perms; r += workers {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				// Per-replicate derived seed keeps the run deterministic
				// regardless of scheduling and identical to the serial path.
				rng.Seed(replicateSeed(m.Seed, r))
				si, err := replicate(rng, scratch)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if si >= s0 {
					local++
				}
			}
			mu.Lock()
			exceed += local
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return exceed, nil
}

// buildGroupTables derives the per-z-group (x,y) contingency tables from a
// single dictionary-coded count query over (z..., x, y), computing Pr(z)
// and the group weight w = Pr(z)·max(H(X|z),H(Y|z)). Groups come back in
// sorted z-key order, matching the deterministic group-by ordering of the
// in-memory pipeline. When the (Z,X,Y) cell space fits the dense budget the
// tables are sliced straight out of the flat mixed-radix tabulation; wider
// spaces fall back to the sparse count map.
func buildGroupTables(ctx context.Context, rel source.Relation, x, y string, z []string) ([]groupTable, error) {
	attrs := append(append([]string(nil), z...), x, y)
	if dc, err := source.Dense(ctx, rel, attrs, nil, 0); err != nil {
		return nil, err
	} else if dc != nil {
		return denseGroupTables(dc, len(z))
	}
	cardX, err := source.Card(ctx, rel, x)
	if err != nil {
		return nil, err
	}
	cardY, err := source.Card(ctx, rel, y)
	if err != nil {
		return nil, err
	}
	counts, err := rel.Counts(ctx, attrs, nil)
	if err != nil {
		return nil, err
	}
	nz := len(z)
	byZ := make(map[string]*contingency.Table2)
	total := 0
	for k, c := range counts {
		zk := string(k.Slice(0, nz))
		ct, ok := byZ[zk]
		if !ok {
			ct, err = contingency.NewTable2(cardX, cardY)
			if err != nil {
				return nil, err
			}
			byZ[zk] = ct
		}
		xc, yc := k.Field(nz), k.Field(nz+1)
		if xc < 0 || int(xc) >= cardX || yc < 0 || int(yc) >= cardY {
			return nil, fmt.Errorf("independence: count code (%d,%d) outside dictionaries %dx%d", xc, yc, cardX, cardY)
		}
		ct.Add(int(xc), int(yc), c)
		total += c
	}
	if total == 0 {
		return nil, nil
	}
	zkeys := make([]string, 0, len(byZ))
	for k := range byZ {
		zkeys = append(zkeys, k)
	}
	sort.Strings(zkeys)

	tables := make([]*contingency.Table2, 0, len(zkeys))
	for _, zk := range zkeys {
		tables = append(tables, byZ[zk])
	}
	return finishGroupTables(tables, total), nil
}

// denseGroupTables slices the per-z-group (x,y) tables out of a dense
// (z..., x, y) tabulation: the cells of conditioning group z occupy the
// arithmetic progression zIdx + prodZ·(x + cardX·y). Group order is by
// encoded z-key — identical to the sparse path's sort.
func denseGroupTables(dc *dataset.DenseCounts, nz int) ([]groupTable, error) {
	if dc.Total == 0 {
		return nil, nil
	}
	cardX, cardY := dc.Cards[nz], dc.Cards[nz+1]
	prodZ := 1
	for _, c := range dc.Cards[:nz] {
		prodZ *= c
	}
	type zgroup struct {
		key   dataset.GroupKey
		table *contingency.Table2
	}
	zdims := dataset.DenseCounts{Cards: dc.Cards[:nz]}
	var groups []zgroup
	for zIdx := 0; zIdx < prodZ; zIdx++ {
		occupied := false
		for cell := zIdx; cell < len(dc.Cells); cell += prodZ {
			if dc.Cells[cell] != 0 {
				occupied = true
				break
			}
		}
		if !occupied {
			continue
		}
		ct, err := contingency.NewTable2(cardX, cardY)
		if err != nil {
			return nil, err
		}
		cell := zIdx
		for yc := 0; yc < cardY; yc++ {
			for xc := 0; xc < cardX; xc++ {
				if c := dc.Cells[cell]; c != 0 {
					ct.Add(xc, yc, c)
				}
				cell += prodZ
			}
		}
		groups = append(groups, zgroup{key: zdims.Key(zIdx), table: ct})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	tables := make([]*contingency.Table2, len(groups))
	for i, g := range groups {
		tables[i] = g.table
	}
	return finishGroupTables(tables, dc.Total), nil
}

// finishGroupTables computes Pr(z) and the sampling weight of each group
// table, shared by the dense and sparse builders.
func finishGroupTables(tables []*contingency.Table2, total int) []groupTable {
	n := float64(total)
	out := make([]groupTable, 0, len(tables))
	for _, ct := range tables {
		prob := float64(ct.Total()) / n
		hx := ct.EntropyRows(stats.PlugIn)
		hy := ct.EntropyCols(stats.PlugIn)
		w := prob * math.Max(hx, hy)
		if hx == 0 || hy == 0 {
			// X or Y constant in this group: MI is identically zero under
			// any permutation; the group cannot contribute.
			w = 0
		}
		out = append(out, groupTable{table: ct, prob: prob, weight: w})
	}
	return out
}

// sampleGroups draws k groups without replacement with probability
// proportional to weight (Efraimidis–Spirakis keys).
func sampleGroups(groups []groupTable, k int, rng *rand.Rand) []groupTable {
	type keyed struct {
		key float64
		g   groupTable
	}
	keys := make([]keyed, len(groups))
	for i, g := range groups {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		keys[i] = keyed{key: math.Pow(u, 1/g.weight), g: g}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key > keys[j].key })
	out := make([]groupTable, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].g
	}
	return out
}

// ---------------------------------------------------------------------------
// HyMIT: hybrid rule (Sec 6)

// HyMIT applies the chi-squared test when the sample is large relative to
// the degrees of freedom (n ≥ Beta·df) and falls back to MIT with group
// sampling otherwise.
type HyMIT struct {
	// Beta is the sample-per-df requirement; zero means DefaultBeta = 5,
	// the value the paper calls ideal.
	Beta float64
	// Permutations, SampleFactor, Seed, Parallel configure the MIT
	// fallback.
	Permutations int
	SampleFactor float64
	Seed         int64
	Parallel     bool
	// Est selects the estimator for both branches.
	Est stats.Estimator
	// Provider optionally supplies cached entropies to the χ² branch.
	Provider EntropyProvider
}

// DefaultBeta is the β of Sec 6 ("β = 5 is ideal").
const DefaultBeta = 5.0

// Test implements Tester.
func (h HyMIT) Test(ctx context.Context, rel source.Relation, x, y string, z []string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := ensureAttrs(rel, x, y, z); err != nil {
		return Result{}, err
	}
	beta := h.Beta
	if beta <= 0 {
		beta = DefaultBeta
	}
	p := h.Provider
	if p == nil {
		rp, err := NewRelationProvider(ctx, rel, h.Est)
		if err != nil {
			return Result{}, err
		}
		p = rp
	}
	df, err := DegreesOfFreedom(ctx, p, x, y, z)
	if err != nil {
		return Result{}, err
	}
	if float64(p.NumRows()) >= beta*float64(df) && df > 0 {
		res, err := (ChiSquare{Provider: p, Est: h.Est}).Test(ctx, rel, x, y, z)
		if err != nil {
			return Result{}, err
		}
		res.Method = "hymit(chi2)"
		return res, nil
	}
	res, err := (MIT{
		Permutations: h.Permutations,
		Est:          h.Est,
		SampleGroups: true,
		SampleFactor: h.SampleFactor,
		Seed:         h.Seed,
		Parallel:     h.Parallel,
	}).Test(ctx, rel, x, y, z)
	if err != nil {
		return Result{}, err
	}
	res.Method = "hymit(mit)"
	return res, nil
}

// ---------------------------------------------------------------------------
// Naive shuffle-based permutation test (the baseline MIT replaces)

// Shuffle is the classical Monte-Carlo permutation test: it permutes the X
// column within each conditioning group and recomputes Î(X;Y|Z) on the
// shuffled data. Its cost is proportional to m·|D|; the paper reports that
// one such test "consumes hours" where MIT takes under a second. It exists
// here as the Fig 6(b) baseline and as a correctness cross-check for MIT.
//
// Shuffle genuinely needs rows: on a counts-only relation it fails with an
// error wrapping hyperr.ErrNeedsMaterialization.
type Shuffle struct {
	Permutations int
	Est          stats.Estimator
	Seed         int64
}

// Test implements Tester.
func (s Shuffle) Test(ctx context.Context, rel source.Relation, x, y string, z []string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := ensureAttrs(rel, x, y, z); err != nil {
		return Result{}, err
	}
	t, err := source.Materialize(ctx, rel)
	if err != nil {
		return Result{}, fmt.Errorf("independence: shuffle test: %w", err)
	}
	if t.NumRows() == 0 {
		return Result{}, fmt.Errorf("independence: %w", hyperr.ErrEmptyTable)
	}
	perms := s.Permutations
	if perms <= 0 {
		perms = DefaultPermutations
	}
	xc, err := t.Column(x)
	if err != nil {
		return Result{}, err
	}
	yc, err := t.Column(y)
	if err != nil {
		return Result{}, err
	}
	groups, _, err := t.GroupBy(z...)
	if err != nil {
		return Result{}, err
	}
	n := float64(t.NumRows())

	// Per-group scratch tables are hoisted out of the replicate loop: each
	// cmiOf call re-tabulates into them instead of allocating m·|groups|
	// fresh tables across the permutation run.
	scratch := make([]*contingency.Table2, len(groups))
	for i := range groups {
		ct, err := contingency.NewTable2(xc.Card(), yc.Card())
		if err != nil {
			return Result{}, err
		}
		scratch[i] = ct
	}
	cmiOf := func(xcodes []int32) (float64, error) {
		total := 0.0
		for gi, g := range groups {
			ct := scratch[gi]
			if err := ct.TabulateRows(xcodes, yc.Codes(), g.Rows); err != nil {
				return 0, err
			}
			total += float64(len(g.Rows)) / n * ct.MI(s.Est)
		}
		return total, nil
	}

	s0, err := cmiOf(xc.Codes())
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	shuffled := append([]int32(nil), xc.Codes()...)
	exceed := 0
	for r := 0; r < perms; r++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		// Permute X within each group, preserving the group structure
		// (destroys only the X–Y dependence within groups).
		for _, g := range groups {
			rows := g.Rows
			for i := len(rows) - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				shuffled[rows[i]], shuffled[rows[j]] = shuffled[rows[j]], shuffled[rows[i]]
			}
		}
		si, err := cmiOf(shuffled)
		if err != nil {
			return Result{}, err
		}
		if si >= s0 {
			exceed++
		}
	}
	pv := float64(exceed) / float64(perms)
	return Result{
		MI:       s0,
		PValue:   pv,
		PValueCI: stats.BinomialCI(pv, perms),
		Method:   "shuffle",
		Groups:   len(groups),
	}, nil
}

// ---------------------------------------------------------------------------
// Instrumentation

// Counter wraps a Tester and counts invocations; the paper reports the
// number of conducted independence tests as a performance measure (Fig 6a,
// footnote 3).
type Counter struct {
	Inner Tester

	mu    sync.Mutex
	calls int
}

// Test implements Tester.
func (c *Counter) Test(ctx context.Context, rel source.Relation, x, y string, z []string) (Result, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.Inner.Test(ctx, rel, x, y, z)
}

// Calls returns the number of tests performed so far.
func (c *Counter) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.calls = 0
	c.mu.Unlock()
}
