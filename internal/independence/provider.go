// Package independence implements HypDB's conditional-independence testing
// engine (Sec 5 and Sec 6 of the paper): the Monte-Carlo permutation test
// over contingency tables (MIT, Alg 2), its group-sampling variant, the
// parametric chi-squared G-test, the hybrid HyMIT rule, and — as the
// baseline the paper's optimization replaces — the naive permutation test
// that reshuffles the data itself.
//
// All tests share the Tester interface so that higher layers (Markov
// boundary discovery, the CD algorithm, bias detection) are parameterized
// by the testing strategy, exactly as in the paper's experiments.
package independence

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/internal/stats"
)

// EntropyProvider supplies joint entropies and distinct counts over
// attribute sets of one fixed table. Implementations differ in how counts
// are obtained: scanning rows, marginalizing a materialized contingency
// table, or probing a pre-computed OLAP cube (Sec 6).
type EntropyProvider interface {
	// JointEntropy returns the estimated H(attrs) in nats.
	JointEntropy(attrs []string) (float64, error)
	// DistinctCount returns |Π_attrs(D)|, the number of distinct
	// combinations present in the data.
	DistinctCount(attrs []string) (int, error)
	// NumRows returns the number of rows of the underlying table.
	NumRows() int
}

// ScanProvider computes entropies by scanning the table on every call.
type ScanProvider struct {
	Table *dataset.Table
	Est   stats.Estimator
}

// NewScanProvider returns a provider over t using the given estimator.
func NewScanProvider(t *dataset.Table, est stats.Estimator) *ScanProvider {
	return &ScanProvider{Table: t, Est: est}
}

// JointEntropy implements EntropyProvider.
func (p *ScanProvider) JointEntropy(attrs []string) (float64, error) {
	if len(attrs) == 0 {
		return 0, nil
	}
	counts, _, err := p.Table.Counts(attrs...)
	if err != nil {
		return 0, err
	}
	return stats.EntropyCountsMap(counts, p.Table.NumRows(), p.Est), nil
}

// DistinctCount implements EntropyProvider.
func (p *ScanProvider) DistinctCount(attrs []string) (int, error) {
	if len(attrs) == 0 {
		return 1, nil
	}
	return p.Table.DistinctCount(attrs...)
}

// NumRows implements EntropyProvider.
func (p *ScanProvider) NumRows() int { return p.Table.NumRows() }

// CachedProvider memoizes another provider. This is the paper's "caching
// entropy" optimization (Sec 6): H(T), H(TZ), ... are shared among many
// conditional mutual-information statements and are computed once.
// It is safe for concurrent use.
type CachedProvider struct {
	inner EntropyProvider

	mu        sync.Mutex
	entropies map[string]float64
	distinct  map[string]int
	hits      int
	misses    int
}

// NewCachedProvider wraps inner with memoization.
func NewCachedProvider(inner EntropyProvider) *CachedProvider {
	return &CachedProvider{
		inner:     inner,
		entropies: make(map[string]float64),
		distinct:  make(map[string]int),
	}
}

func cacheKey(attrs []string) string {
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}

// JointEntropy implements EntropyProvider.
func (p *CachedProvider) JointEntropy(attrs []string) (float64, error) {
	k := cacheKey(attrs)
	p.mu.Lock()
	if h, ok := p.entropies[k]; ok {
		p.hits++
		p.mu.Unlock()
		return h, nil
	}
	p.misses++
	p.mu.Unlock()
	h, err := p.inner.JointEntropy(attrs)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.entropies[k] = h
	p.mu.Unlock()
	return h, nil
}

// DistinctCount implements EntropyProvider.
func (p *CachedProvider) DistinctCount(attrs []string) (int, error) {
	k := cacheKey(attrs)
	p.mu.Lock()
	if d, ok := p.distinct[k]; ok {
		p.hits++
		p.mu.Unlock()
		return d, nil
	}
	p.misses++
	p.mu.Unlock()
	d, err := p.inner.DistinctCount(attrs)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.distinct[k] = d
	p.mu.Unlock()
	return d, nil
}

// NumRows implements EntropyProvider.
func (p *CachedProvider) NumRows() int { return p.inner.NumRows() }

// Stats returns cache hit/miss counts, for the Fig 6(c) ablation.
func (p *CachedProvider) Stats() (hits, misses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// ConditionalMI estimates I(x;y|z) on the provider's table using the
// chain-rule identity over four joint entropies.
func ConditionalMI(p EntropyProvider, x, y string, z []string) (float64, error) {
	xz := append(append([]string(nil), z...), x)
	yz := append(append([]string(nil), z...), y)
	xyz := append(append([]string(nil), z...), x, y)
	hXZ, err := p.JointEntropy(xz)
	if err != nil {
		return 0, err
	}
	hYZ, err := p.JointEntropy(yz)
	if err != nil {
		return 0, err
	}
	hXYZ, err := p.JointEntropy(xyz)
	if err != nil {
		return 0, err
	}
	hZ, err := p.JointEntropy(z)
	if err != nil {
		return 0, err
	}
	return stats.ConditionalMI(hXZ, hYZ, hXYZ, hZ), nil
}

// DegreesOfFreedom returns (|Π_x|−1)(|Π_y|−1)·|Π_z| as used by the
// parametric test (Sec 6).
func DegreesOfFreedom(p EntropyProvider, x, y string, z []string) (int, error) {
	dx, err := p.DistinctCount([]string{x})
	if err != nil {
		return 0, err
	}
	dy, err := p.DistinctCount([]string{y})
	if err != nil {
		return 0, err
	}
	dz, err := p.DistinctCount(z)
	if err != nil {
		return 0, err
	}
	if dx < 2 || dy < 2 {
		return 0, nil
	}
	return (dx - 1) * (dy - 1) * dz, nil
}

// ensureAttrs verifies the named attributes exist and are distinct between
// the tested pair and the conditioning set.
func ensureAttrs(t *dataset.Table, x, y string, z []string) error {
	if x == y {
		return fmt.Errorf("independence: testing %q against itself", x)
	}
	if !t.HasColumn(x) {
		return fmt.Errorf("independence: no column %q: %w", x, hyperr.ErrUnknownAttribute)
	}
	if !t.HasColumn(y) {
		return fmt.Errorf("independence: no column %q: %w", y, hyperr.ErrUnknownAttribute)
	}
	for _, a := range z {
		if a == x || a == y {
			return fmt.Errorf("independence: conditioning set contains tested attribute %q", a)
		}
		if !t.HasColumn(a) {
			return fmt.Errorf("independence: no column %q: %w", a, hyperr.ErrUnknownAttribute)
		}
	}
	return nil
}
