// Command hypdbload drives a load and chaos mix against a running hypdbd
// and checks the server's overload contract: requests either succeed or
// are shed with a typed 429/503 + Retry-After — they never hang — and
// analyses never observe a mix of snapshot epochs while appends race
// them.
//
// Usage:
//
//	hypdbload [-addr http://localhost:8080] [-token SECRET]
//	          [-dataset loadgen] [-create] [-shards 2] [-rows 1]
//	          [-duration 10s] [-workers 8]
//	          [-mix analyze=6,append=2,audit=0,metrics=1]
//	          [-timeout 60s] [-p99 0] [-slowloris 0] [-seed 1]
//	          [-out result.json] [-scrape metrics.prom]
//
// The mix weights draw analyze, append, audit and metrics operations per
// worker loop. -create registers the target dataset (a generated Berkeley
// admissions table, sharded so appends work) if it is missing; that and
// the append mix require an operator-scope -token when the server runs
// with authentication. -slowloris N holds N connections open dribbling
// unfinished requests for the whole run — the server must keep serving
// real traffic alongside them.
//
// The run exits 0 when the contract held; it exits 1 and prints each
// violation when a request hung past -timeout, a shed carried no
// Retry-After, a report mixed epochs, or an operation's p99 exceeded
// -p99 (0 disables the latency bound). -out writes the full result —
// outcome counts and per-operation latency histograms — as JSON.
// -scrape fetches the server's GET /metrics Prometheus exposition after
// the run and writes it to the named file, an artifact pairing the load
// result with the server-side counters it drove.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hypdb/api"
	"hypdb/internal/datagen"
	"hypdb/internal/loadgen"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the hypdbd under test")
		token    = flag.String("token", "", "bearer token (operator scope needed for -create and append mixes)")
		dataset  = flag.String("dataset", "loadgen", "target dataset name")
		create   = flag.Bool("create", false, "create the dataset (generated Berkeley table) if missing")
		shards   = flag.Int("shards", 2, "partitions for a -create'd dataset (sharded backend, appendable)")
		rows     = flag.Int("rows", 1, "Berkeley table size multiplier for -create")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		workers  = flag.Int("workers", 8, "concurrent load workers")
		mixSpec  = flag.String("mix", "analyze=6,append=2,audit=0,metrics=1", "operation weights")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request hang bound")
		p99Max   = flag.Duration("p99", 0, "per-operation p99 bound (0 disables)")
		loris    = flag.Int("slowloris", 0, "slow-loris connections to hold open during the run")
		seed     = flag.Int64("seed", 1, "worker schedule seed")
		out      = flag.String("out", "", "write the JSON result (counts + latency histograms) here")
		scrape   = flag.String("scrape", "", "write the server's post-run GET /metrics Prometheus exposition here")
	)
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fatal("parsing -mix: %v", err)
	}
	var opts []api.ClientOption
	if *token != "" {
		opts = append(opts, api.WithToken(*token))
	}
	client := api.NewClient(*addr, nil, opts...)
	ctx := context.Background()

	baseRows, err := ensureDataset(ctx, client, *dataset, *create, *shards, *rows)
	if err != nil {
		fatal("%v", err)
	}

	if *loris > 0 {
		host, err := hostOf(*addr)
		if err != nil {
			fatal("deriving slow-loris target from -addr: %v", err)
		}
		lorisCtx, stop := context.WithCancel(ctx)
		defer stop()
		if err := loadgen.SlowLoris(lorisCtx, host, *loris, 100*time.Millisecond); err != nil {
			fatal("opening slow-loris connections: %v", err)
		}
		fmt.Printf("slow-loris: %d connections dribbling\n", *loris)
	}

	runner := loadgen.New(loadgen.Config{
		Client:  client,
		Dataset: *dataset,
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		AuditSpec: api.AuditSpec{
			Treatments: []string{"Gender"}, Outcomes: []string{"Accepted"}, TopK: 3,
		},
		AppendRows: [][]string{{"Female", "A", "1"}, {"Male", "F", "0"}},
		BaseRows:   baseRows,
		Workers:    *workers,
		Duration:   *duration,

		PerRequestTimeout: *timeout,
		Mix:               mix,
		Seed:              *seed,
	})
	fmt.Printf("load: %s for %s with %d workers (mix %s)\n", *dataset, *duration, *workers, *mixSpec)
	res := runner.Run(ctx)

	printResult(res)
	if *out != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal("encoding result: %v", err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal("writing -out: %v", err)
		}
		fmt.Printf("result written to %s\n", *out)
	}

	if *scrape != "" {
		text, err := client.MetricsText(ctx)
		if err != nil {
			fatal("scraping /metrics: %v", err)
		}
		if err := os.WriteFile(*scrape, []byte(text), 0o644); err != nil {
			fatal("writing -scrape: %v", err)
		}
		fmt.Printf("exposition written to %s\n", *scrape)
	}

	if v := res.Violations(*p99Max); len(v) != 0 {
		for _, msg := range v {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", msg)
		}
		os.Exit(1)
	}
	fmt.Println("contract held: no hangs, no mixed epochs, sheds carried Retry-After")
}

// ensureDataset resolves the target dataset's current row count, creating
// it first when asked and missing.
func ensureDataset(ctx context.Context, c *api.Client, name string, create bool, shards, rows int) (int, error) {
	stats, err := c.Stats(ctx, name)
	if err == nil {
		return stats.Rows, nil
	}
	var apiErr *api.Error
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		return 0, fmt.Errorf("checking dataset %q: %w", name, err)
	}
	if !create {
		return 0, fmt.Errorf("dataset %q not found (use -create to register it)", name)
	}
	tab, err := datagen.Berkeley(int64(rows))
	if err != nil {
		return 0, err
	}
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		return 0, err
	}
	info, err := c.CreateShardedDataset(ctx, name, b.String(), shards)
	if err != nil {
		return 0, fmt.Errorf("creating dataset %q: %w", name, err)
	}
	fmt.Printf("created dataset %q: %d rows, %d shards\n", name, info.Rows, shards)
	return info.Rows, nil
}

// parseMix parses "analyze=6,append=2,audit=0,metrics=1".
func parseMix(spec string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad weight in %q", part)
		}
		switch key {
		case loadgen.OpAnalyze:
			m.Analyze = w
		case loadgen.OpAudit:
			m.Audit = w
		case loadgen.OpAppend:
			m.Append = w
		case loadgen.OpMetrics:
			m.Metrics = w
		default:
			return m, fmt.Errorf("unknown operation %q", key)
		}
	}
	if m.Analyze+m.Audit+m.Append+m.Metrics == 0 {
		return m, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return m, nil
}

func hostOf(addr string) (string, error) {
	u, err := url.Parse(addr)
	if err != nil {
		return "", err
	}
	host := u.Host
	if u.Port() == "" {
		switch u.Scheme {
		case "https":
			host += ":443"
		default:
			host += ":80"
		}
	}
	return host, nil
}

func printResult(res *loadgen.Result) {
	c := res.Counts
	fmt.Printf("outcomes: ok=%d shed=%d typed_errors=%d transport=%d hung=%d mixed_epoch=%d\n",
		c.OK, c.Shed, c.TypedErrors, c.Transport, c.Hung, c.MixedEpoch)
	ops := make([]string, 0, len(res.Latency))
	for op := range res.Latency {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		s := res.Latency[op]
		fmt.Printf("%-8s n=%-6d p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
			op, s.Count, s.P50MS, s.P95MS, s.P99MS, s.MaxMS)
	}
	for _, sample := range res.ErrorSamples {
		fmt.Printf("sample: %s\n", sample)
	}
}

func asAPIError(err error, target **api.Error) bool {
	return errors.As(err, target)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hypdbload: "+format+"\n", args...)
	os.Exit(1)
}
