package countcache

import (
	"context"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/source"
	"hypdb/source/mem"
)

// countingRel wraps a relation and counts backend Counts calls.
type countingRel struct {
	source.Relation
	mu    sync.Mutex
	calls int
}

func (c *countingRel) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.Relation.Counts(ctx, attrs, where)
}

func (c *countingRel) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func testTable(t testing.TB) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("A", "B", "C")
	for i := 0; i < 240; i++ {
		b.MustAdd(strconv.Itoa(i%3), strconv.Itoa((i/3)%4), strconv.Itoa(i%2))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestPrimeServesAllSubsets(t *testing.T) {
	tab := testTable(t)
	inner := &countingRel{Relation: mem.New(tab)}
	c := Wrap(inner, 0)
	ctx := context.Background()

	if err := c.Prime(ctx, []string{"A", "B", "C"}, 0); err != nil {
		t.Fatal(err)
	}
	primed := inner.Calls() // counting wrapper has no DenseCounter, so the fetch shows as one Counts

	subsets := [][]string{{"A"}, {"B"}, {"C"}, {"A", "B"}, {"B", "C"}, {"C", "A"}, {"C", "B", "A"}, nil}
	for _, attrs := range subsets {
		got, err := c.Counts(ctx, attrs, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mem.New(tab).Counts(ctx, attrs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("attrs %v: cached counts differ from backend", attrs)
		}
	}
	if calls := inner.Calls(); calls != primed {
		t.Errorf("backend queried %d times after priming, want %d (all subsets derived)", calls, primed)
	}
	st := c.Stats()
	if st.Derived == 0 {
		t.Errorf("no derived views recorded: %+v", st)
	}
}

func TestDenseReorder(t *testing.T) {
	tab := testTable(t)
	c := Wrap(mem.New(tab), 0)
	ctx := context.Background()
	// Request in non-canonical order: codes must follow the request order.
	dc, err := c.DenseCounts(ctx, []string{"C", "A"}, nil, 0)
	if err != nil || dc == nil {
		t.Fatalf("dense = (%v, %v)", dc, err)
	}
	want, err := mem.New(tab).DenseCounts(ctx, []string{"C", "A"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dc.Cells, want.Cells) || !reflect.DeepEqual(dc.Cards, want.Cards) {
		t.Errorf("reordered dense view differs: %+v vs %+v", dc, want)
	}
}

func TestBudgetPassThrough(t *testing.T) {
	tab := testTable(t)
	inner := &countingRel{Relation: mem.New(tab)}
	c := Wrap(inner, 4) // budget below |A|·|B| = 12
	ctx := context.Background()
	if dc, err := c.DenseCounts(ctx, []string{"A", "B"}, nil, 0); err != nil || dc != nil {
		t.Fatalf("over-budget dense = (%v, %v), want (nil, nil)", dc, err)
	}
	got, err := c.Counts(ctx, []string{"A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mem.New(tab).Counts(ctx, []string{"A", "B"}, nil)
	if !reflect.DeepEqual(got, want) {
		t.Error("over-budget counts differ from backend")
	}
	if inner.Calls() == 0 {
		t.Error("over-budget request did not reach the backend")
	}
}

func TestRestrictSeparatesCaches(t *testing.T) {
	tab := testTable(t)
	c := Wrap(mem.New(tab), 0)
	ctx := context.Background()
	view, err := c.Restrict(ctx, dataset.Eq{Attr: "A", Value: "0"})
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := view.(*Relation)
	if !ok {
		t.Fatalf("restricted view is %T, want *countcache.Relation", view)
	}
	if cv.Backend() == c.Backend() {
		t.Error("restriction kept the parent backend identity")
	}
	got, err := view.Counts(ctx, []string{"B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mem.New(tab).Restrict(ctx, dataset.Eq{Attr: "A", Value: "0"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Counts(ctx, []string{"B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("restricted counts differ")
	}
	// Same predicate again: the wrapper is memoized.
	view2, err := c.Restrict(ctx, dataset.Eq{Attr: "A", Value: "0"})
	if err != nil {
		t.Fatal(err)
	}
	if view2 != view {
		t.Error("repeated restriction produced a new wrapper")
	}
	if n, _ := view.NumRows(ctx); n != 80 {
		t.Errorf("restricted NumRows = %d, want 80", n)
	}
}

func TestWrapIdempotent(t *testing.T) {
	c := Wrap(mem.New(testTable(t)), 0)
	if Wrap(c, 0) != c {
		t.Error("double wrap created a new cache")
	}
}

func TestMaterializeForwards(t *testing.T) {
	tab := testTable(t)
	c := Wrap(mem.New(tab), 0)
	got, err := c.Materialize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != tab {
		t.Error("materialize did not forward to the mem backend")
	}
	co := Wrap(source.CountsOnly(mem.New(tab)), 0)
	if _, err := co.Materialize(context.Background()); err == nil {
		t.Error("counts-only backend materialized through the cache")
	}
}

func TestConcurrentDense(t *testing.T) {
	tab := testTable(t)
	c := Wrap(mem.New(tab), 0)
	ctx := context.Background()
	var wg sync.WaitGroup
	subsets := [][]string{{"A"}, {"B", "C"}, {"A", "B", "C"}, {"C"}}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			attrs := subsets[i%len(subsets)]
			dc, err := c.DenseCounts(ctx, attrs, nil, 0)
			if err != nil || dc == nil {
				t.Errorf("dense %v: (%v, %v)", attrs, dc, err)
				return
			}
			if dc.Total != tab.NumRows() {
				t.Errorf("dense %v: total %d", attrs, dc.Total)
			}
		}(i)
	}
	wg.Wait()
}

// TestRestrictedViewsShareCellBudget is the regression test for the shared
// cell ledger: a predicate-heavy sweep — many distinct WHERE clauses, each
// spawning its own restricted-view cache and priming a closure — must stay
// within one tree-wide cell bound instead of multiplying it per predicate.
func TestRestrictedViewsShareCellBudget(t *testing.T) {
	tab := testTable(t)
	const budget = 24 // |A|·|B| = 12 fits per view; the bound is 4× that
	c := Wrap(mem.New(tab), budget)
	ctx := context.Background()

	maxTotal := budget * maxTotalCellsFactor
	for i := 0; i < 3; i++ { // values of A: one restriction (and child cache) each
		child, err := c.Restrict(ctx, dataset.In{Attr: "A", Values: []string{strconv.Itoa(i)}})
		if err != nil {
			t.Fatal(err)
		}
		cc, ok := child.(*Relation)
		if !ok {
			t.Fatalf("restricted view is %T, want *Relation", child)
		}
		if cc.account != c.account {
			t.Fatal("restricted child does not share the root's cell ledger")
		}
		if err := cc.Prime(ctx, []string{"A", "B"}, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := cc.Counts(ctx, []string{"B", "C"}, nil); err != nil {
			t.Fatal(err)
		}
		if got := c.TotalCachedCells(); got > maxTotal {
			t.Fatalf("after %d restricted primes: %d cached cells, bound is %d", i+1, got, maxTotal)
		}
	}
	if err := c.Prime(ctx, []string{"A", "B", "C"}, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalCachedCells(); got > maxTotal || got <= 0 {
		t.Fatalf("final ledger %d, want within (0, %d]", got, maxTotal)
	}

	// Counts served through the bounded tree still match the backend.
	child, err := c.Restrict(ctx, dataset.In{Attr: "A", Values: []string{"1"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := child.Counts(ctx, []string{"B", "C"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mem.New(tab).Restrict(ctx, dataset.In{Attr: "A", Values: []string{"1"}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Counts(ctx, []string{"B", "C"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("restricted counts under the shared ledger differ from backend")
	}
}

// TestDroppedRestrictionsReleaseCells pins the ledger bookkeeping: evicting
// or invalidating restriction children returns their cells, so the ledger
// never leaks toward the bound on long predicate churn.
func TestDroppedRestrictionsReleaseCells(t *testing.T) {
	tab := testTable(t)
	c := Wrap(mem.New(tab), 0)
	ctx := context.Background()
	child, err := c.Restrict(ctx, dataset.In{Attr: "A", Values: []string{"0"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := child.(*Relation).Prime(ctx, []string{"B", "C"}, 0); err != nil {
		t.Fatal(err)
	}
	if c.TotalCachedCells() == 0 {
		t.Fatal("restricted prime charged nothing to the ledger")
	}
	child.(*Relation).dropAllViews()
	if got := c.TotalCachedCells(); got != 0 {
		t.Fatalf("ledger holds %d cells after dropping every view, want 0", got)
	}
}
