// Package dag implements causal DAGs (Sec 2 and Appendix 10.1 of the
// paper): the graph type itself, d-separation, graph-side Markov
// boundaries, Erdős–Rényi random DAG generation and forward sampling from
// CPT-parameterized networks. The sampling machinery replaces the R catnet
// package the paper used to generate RandomData (Sec 7.1): causal DAGs
// admit the same factorized distribution as Bayesian networks.
package dag

import (
	"fmt"
	"sort"
)

// DAG is a directed acyclic graph over named nodes.
type DAG struct {
	names    []string
	index    map[string]int
	parents  [][]int // sorted
	children [][]int // sorted
}

// New creates an edgeless DAG over the given node names.
func New(names ...string) (*DAG, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("dag: need at least one node")
	}
	g := &DAG{
		names:    append([]string(nil), names...),
		index:    make(map[string]int, len(names)),
		parents:  make([][]int, len(names)),
		children: make([][]int, len(names)),
	}
	for i, n := range names {
		if _, dup := g.index[n]; dup {
			return nil, fmt.Errorf("dag: duplicate node %q", n)
		}
		g.index[n] = i
	}
	return g, nil
}

// MustNew is New that panics on error.
func MustNew(names ...string) *DAG {
	g, err := New(names...)
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns the node count.
func (g *DAG) NumNodes() int { return len(g.names) }

// Names returns the node names in index order. Callers must not mutate.
func (g *DAG) Names() []string { return g.names }

// Name returns the name of node i.
func (g *DAG) Name(i int) string { return g.names[i] }

// Index returns the index of the named node, or -1.
func (g *DAG) Index(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	return -1
}

// AddEdge inserts u → v, rejecting self-loops, duplicates and cycles.
func (g *DAG) AddEdge(u, v string) error {
	ui, vi := g.Index(u), g.Index(v)
	if ui < 0 {
		return fmt.Errorf("dag: no node %q", u)
	}
	if vi < 0 {
		return fmt.Errorf("dag: no node %q", v)
	}
	return g.AddEdgeIdx(ui, vi)
}

// AddEdgeIdx inserts an edge by node index.
func (g *DAG) AddEdgeIdx(u, v int) error {
	if u == v {
		return fmt.Errorf("dag: self-loop on %q", g.names[u])
	}
	for _, c := range g.children[u] {
		if c == v {
			return fmt.Errorf("dag: duplicate edge %q -> %q", g.names[u], g.names[v])
		}
	}
	if g.reaches(v, u) {
		return fmt.Errorf("dag: edge %q -> %q would create a cycle", g.names[u], g.names[v])
	}
	g.children[u] = insertSorted(g.children[u], v)
	g.parents[v] = insertSorted(g.parents[v], u)
	return nil
}

// MustAddEdge is AddEdge that panics on error; for statically known graphs.
func (g *DAG) MustAddEdge(u, v string) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// reaches reports whether there is a directed path from u to v.
func (g *DAG) reaches(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, len(g.names))
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.children[x] {
			if c == v {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Parents returns the parent indices of node i (PA_X). Callers must not
// mutate.
func (g *DAG) Parents(i int) []int { return g.parents[i] }

// Children returns the child indices of node i. Callers must not mutate.
func (g *DAG) Children(i int) []int { return g.children[i] }

// ParentNames returns the parent names of the named node.
func (g *DAG) ParentNames(name string) ([]string, error) {
	i := g.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("dag: no node %q", name)
	}
	out := make([]string, 0, len(g.parents[i]))
	for _, p := range g.parents[i] {
		out = append(out, g.names[p])
	}
	return out, nil
}

// NumEdges returns the edge count.
func (g *DAG) NumEdges() int {
	n := 0
	for _, c := range g.children {
		n += len(c)
	}
	return n
}

// Edges returns all edges as [from, to] index pairs in deterministic order.
func (g *DAG) Edges() [][2]int {
	var out [][2]int
	for u, cs := range g.children {
		for _, v := range cs {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// HasEdge reports whether u → v exists.
func (g *DAG) HasEdge(u, v int) bool {
	i := sort.SearchInts(g.children[u], v)
	return i < len(g.children[u]) && g.children[u][i] == v
}

// Neighbors reports whether u and v are adjacent (in either direction).
func (g *DAG) Neighbors(u, v int) bool { return g.HasEdge(u, v) || g.HasEdge(v, u) }

// TopoOrder returns a topological order of the node indices.
func (g *DAG) TopoOrder() []int {
	n := len(g.names)
	indeg := make([]int, n)
	for i := range g.parents {
		indeg[i] = len(g.parents[i])
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	out := make([]int, 0, n)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		out = append(out, x)
		for _, c := range g.children[x] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return out
}

// Ancestors returns the set of (proper) ancestors of the given nodes,
// including the nodes themselves.
func (g *DAG) Ancestors(nodes []int) map[int]bool {
	out := make(map[int]bool)
	stack := append([]int(nil), nodes...)
	for _, x := range nodes {
		out[x] = true
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.parents[x] {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}

// Descendants returns the descendants of node i, including i.
func (g *DAG) Descendants(i int) map[int]bool {
	out := map[int]bool{i: true}
	stack := []int{i}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.children[x] {
			if !out[c] {
				out[c] = true
				stack = append(stack, c)
			}
		}
	}
	return out
}

// MarkovBoundary returns the indices of the Markov boundary of node i: its
// parents, children and parents of children (Prop 2.5 of the paper).
func (g *DAG) MarkovBoundary(i int) []int {
	set := make(map[int]bool)
	for _, p := range g.parents[i] {
		set[p] = true
	}
	for _, c := range g.children[i] {
		set[c] = true
		for _, sp := range g.parents[c] {
			if sp != i {
				set[sp] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// MarkovBoundaryNames is MarkovBoundary by node name.
func (g *DAG) MarkovBoundaryNames(name string) ([]string, error) {
	i := g.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("dag: no node %q", name)
	}
	idx := g.MarkovBoundary(i)
	out := make([]string, len(idx))
	for j, x := range idx {
		out[j] = g.names[x]
	}
	return out, nil
}

// Clone deep-copies the DAG.
func (g *DAG) Clone() *DAG {
	out := MustNew(g.names...)
	for u, cs := range g.children {
		for _, v := range cs {
			out.children[u] = append([]int(nil), g.children[u]...)
			_ = v
		}
	}
	for i := range g.parents {
		out.parents[i] = append([]int(nil), g.parents[i]...)
		out.children[i] = append([]int(nil), g.children[i]...)
	}
	return out
}
