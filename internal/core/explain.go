package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hypdb/internal/stats"
	"hypdb/source"
)

// Responsibility is a coarse-grained explanation entry (Def 3.3): one
// variable of V and its normalized share of the bias.
type Responsibility struct {
	Attr string
	// Rho is the degree of responsibility ρ_Z ∈ [0,1]; the V-members sum
	// to 1 when any bias exists.
	Rho float64
	// MI is the unnormalized numerator Î(T;Z|Γ).
	MI float64
}

// ExplainCoarse ranks the variables V by their degree of responsibility for
// the bias in the given context view. Per footnote 1 of the paper, the
// numerator I(T;V|Γ) − I(T;V|Z,Γ) collapses to I(T;Z|Γ) for Z ∈ V, which
// is how it is computed here — one pairwise count query per variable.
// Estimates clamped at zero keep ρ within [0,1] under the Miller-Madow
// correction.
func ExplainCoarse(ctx context.Context, view source.Relation, treatment string, variables []string, cfg Config) ([]Responsibility, error) {
	if len(variables) == 0 {
		return nil, nil
	}
	if err := source.CheckAttrs(view, treatment); err != nil {
		return nil, err
	}
	n, err := view.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	cardT, err := source.Card(ctx, view, treatment)
	if err != nil {
		return nil, err
	}
	out := make([]Responsibility, 0, len(variables))
	total := 0.0
	for _, v := range variables {
		cardV, err := source.Card(ctx, view, v)
		if err != nil {
			return nil, err
		}
		// I(T;V) = H(T) + H(V) − H(TV), with the marginals folded densely in
		// code order to match the code-vector estimator exactly. Both paths
		// (flat tabulation, sparse map) produce bit-identical entropies.
		denseT := make([]int, cardT)
		denseV := make([]int, cardV)
		est := cfg.estimator()
		var hTV float64
		if dc, err := source.Dense(ctx, view, []string{treatment, v}, nil, 0); err != nil {
			return nil, err
		} else if dc != nil {
			cell := 0
			for vc := 0; vc < cardV; vc++ {
				for tc := 0; tc < cardT; tc++ {
					c := dc.Cells[cell]
					denseT[tc] += c
					denseV[vc] += c
					cell++
				}
			}
			hTV = stats.EntropyCountsStable(dc.Cells, n, est)
		} else {
			joint, err := view.Counts(ctx, []string{treatment, v}, nil)
			if err != nil {
				return nil, err
			}
			for k, c := range joint {
				denseT[k.Field(0)] += c
				denseV[k.Field(1)] += c
			}
			hTV = stats.EntropyCountsMap(joint, n, est)
		}
		mi := stats.EntropyCounts(denseT, n, est) + stats.EntropyCounts(denseV, n, est) - hTV
		if mi < 0 {
			mi = 0
		}
		total += mi
		out = append(out, Responsibility{Attr: v, MI: mi})
	}
	if total > 0 {
		for i := range out {
			out[i].Rho = out[i].MI / total
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rho > out[j].Rho })
	return out, nil
}

// FineExplanation is one fine-grained explanation (Def 3.4): a ground
// triple (t, y, z) with its contributions to Î(T;Z) and Î(Y;Z).
type FineExplanation struct {
	TreatmentValue string
	OutcomeValue   string
	CovariateValue string
	// KappaTZ is κ(t,z), the contribution of (t,z) to I(T;Z).
	KappaTZ float64
	// KappaYZ is κ(y,z), the contribution of (y,z) to I(Y;Z).
	KappaYZ float64
}

// ExplainFine implements the FGE procedure (Alg 3): it ranks the triples of
// Π_{T,Y,Z}(view) by their contribution to Î(T;Z) and to Î(Y;Z), aggregates
// the two rankings with Borda's method, and returns the top-k triples. All
// statistics derive from one count query over (T, Y, Z).
func ExplainFine(ctx context.Context, view source.Relation, treatment, outcome, covariate string, k int, cfg Config) ([]FineExplanation, error) {
	if k <= 0 {
		k = 2
	}
	if err := source.CheckAttrs(view, treatment, outcome, covariate); err != nil {
		return nil, err
	}
	n, err := view.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("core: empty context")
	}
	tripleCounts, err := view.Counts(ctx, []string{treatment, outcome, covariate}, nil)
	if err != nil {
		return nil, err
	}

	// Joint and marginal frequencies, folded from the triples.
	type pair struct{ a, b int32 }
	type triple struct{ t, y, z int32 }
	tzCounts := make(map[pair]int)
	yzCounts := make(map[pair]int)
	tCounts := make(map[int32]int)
	yCounts := make(map[int32]int)
	zCounts := make(map[int32]int)
	triples := make(map[triple]int)
	for key, c := range tripleCounts {
		tv, yv, zv := key.Field(0), key.Field(1), key.Field(2)
		tzCounts[pair{tv, zv}] += c
		yzCounts[pair{yv, zv}] += c
		tCounts[tv] += c
		yCounts[yv] += c
		zCounts[zv] += c
		triples[triple{tv, yv, zv}] += c
	}
	kappa := func(joint, ma, mb int) float64 {
		if joint == 0 {
			return 0
		}
		pxy := float64(joint) / float64(n)
		px := float64(ma) / float64(n)
		py := float64(mb) / float64(n)
		return pxy * math.Log(pxy/(px*py))
	}

	// Materialize the distinct triples deterministically.
	keys := make([]triple, 0, len(triples))
	for k := range triples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.z < b.z
	})

	kTZ := make([]float64, len(keys))
	kYZ := make([]float64, len(keys))
	for i, tr := range keys {
		kTZ[i] = kappa(tzCounts[pair{tr.t, tr.z}], tCounts[tr.t], zCounts[tr.z])
		kYZ[i] = kappa(yzCounts[pair{tr.y, tr.z}], yCounts[tr.y], zCounts[tr.z])
	}
	consensus := stats.BordaAggregate(stats.RankDescending(kTZ), stats.RankDescending(kYZ))
	if consensus == nil {
		return nil, fmt.Errorf("core: rank aggregation failed over %d triples", len(keys))
	}
	if k > len(consensus) {
		k = len(consensus)
	}
	tDict, err := view.Labels(ctx, treatment)
	if err != nil {
		return nil, err
	}
	yDict, err := view.Labels(ctx, outcome)
	if err != nil {
		return nil, err
	}
	zDict, err := view.Labels(ctx, covariate)
	if err != nil {
		return nil, err
	}
	out := make([]FineExplanation, 0, k)
	for _, idx := range consensus[:k] {
		tr := keys[idx]
		out = append(out, FineExplanation{
			TreatmentValue: tDict[tr.t],
			OutcomeValue:   yDict[tr.y],
			CovariateValue: zDict[tr.z],
			KappaTZ:        kTZ[idx],
			KappaYZ:        kYZ[idx],
		})
	}
	return out, nil
}
