package core

import (
	"context"

	"math/rand"
	"strconv"
	"strings"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/query"
	"hypdb/source/mem"
)

func queryOf(treatment, outcome string) query.Query {
	return query.Query{Treatment: treatment, Outcomes: []string{outcome}}
}

// independentTable builds pure-noise data (T, Z, Y all independent).
func independentTable(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("T", "Z", "Y")
	for i := 0; i < n; i++ {
		b.MustAdd(strconv.Itoa(rng.Intn(2)), strconv.Itoa(rng.Intn(2)), strconv.Itoa(rng.Intn(2)))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFormattingHelpers(t *testing.T) {
	if got := ctxSuffix(nil); got != "" {
		t.Errorf("ctxSuffix(nil) = %q", got)
	}
	if got := ctxSuffix([]string{"a", "b"}); got != "[a,b]" {
		t.Errorf("ctxSuffix = %q", got)
	}
	if got := fmtFloats([]float64{0.5, 0.25}); got != "0.5000, 0.2500" {
		t.Errorf("fmtFloats = %q", got)
	}
	if got := fmtP(0.0001, 0); got != "<0.001" {
		t.Errorf("fmtP tiny = %q", got)
	}
	if got := fmtP(0.05, 0.01); got != "0.050±0.010" {
		t.Errorf("fmtP with CI = %q", got)
	}
	if got := fmtP(0.25, 0); got != "0.250" {
		t.Errorf("fmtP plain = %q", got)
	}
	if got := fmtPValues([]float64{0.5}, nil); got != "(0.500)" {
		t.Errorf("fmtPValues = %q", got)
	}
	if got := indent("a\nb", "> "); got != "> a\n> b" {
		t.Errorf("indent = %q", got)
	}
}

func TestReportRenderingUnbiasedPath(t *testing.T) {
	// A report over pure noise still renders sensibly: no crash, no
	// explanations, answers present.
	tab := independentTable(t, 2000, 61)
	rep, err := Analyze(context.Background(), mem.New(tab), queryOf("T", "Y"), Options{Config: Config{Seed: 62}})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.String()
	if !strings.Contains(text, "Query Answers:") {
		t.Error("report missing answers section")
	}
	if !strings.Contains(text, "Timings:") {
		t.Error("report missing timings")
	}
}

func TestWriteTextSections(t *testing.T) {
	tab := simpsonData(t, 8000, 63)
	rep, err := Analyze(context.Background(), mem.New(tab), queryOf("T", "Y"), Options{Config: Config{Seed: 64}})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, section := range []string{
		"SQL Query:", "Query Answers:", "Covariates (Z):",
		"Bias detection", "Coarse-grained explanations",
		"Fine-grained explanations", "Refined answers (total effect)",
		"Rewritten SQL:",
	} {
		if !strings.Contains(text, section) {
			t.Errorf("report missing section %q", section)
		}
	}
}
