// Package memsql is an in-process database/sql driver serving registered
// in-memory dataset.Tables. It exists so the source/sqldb backend — and any
// test, benchmark or example that wants a SQL-speaking HypDB — can run
// against a real database/sql stack without an external DBMS or a cgo
// dependency.
//
// The driver implements exactly the closed SQL dialect the sqldb backend
// renders (ANSI double-quoted identifiers, single-quoted string literals):
//
//	SELECT * FROM t WHERE 1=0                          -- schema probe
//	SELECT COUNT(*) FROM t [WHERE p]                   -- row count
//	SELECT COUNT(DISTINCT c) FROM t [WHERE p]          -- cardinality
//	SELECT DISTINCT c FROM t [WHERE p]                 -- dictionary load
//	SELECT c1, ..., ck, COUNT(*) FROM t [WHERE p]
//	    GROUP BY c1, ..., ck                           -- group-by counts
//	SELECT c1, ..., ck FROM t [WHERE p]                -- materialization
//
// WHERE expressions are parsed with dataset.ParsePredicate, which accepts
// everything the predicate combinators render. Anything outside this shape
// is rejected with an error naming the query, which keeps the driver honest
// as the backend evolves.
package memsql

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"
	"sync"

	"hypdb/internal/dataset"
)

// DriverName is the name registered with database/sql.
const DriverName = "memsql"

var (
	regMu  sync.RWMutex
	tables = make(map[string]*dataset.Table)
)

// Stats counts the statements the driver has executed, by class — the
// instrumentation behind the regression tests that pin how many GROUP BY
// round trips one analysis is allowed to issue (the one-query-per-closure
// pushdown must not silently decay back into N queries per hill climb).
type Stats struct {
	// Probes counts schema probes (SELECT * … WHERE 1=0).
	Probes int64
	// RowCounts counts SELECT COUNT(*) aggregates.
	RowCounts int64
	// Cardinalities counts SELECT COUNT(DISTINCT …) aggregates.
	Cardinalities int64
	// Dicts counts SELECT DISTINCT dictionary loads.
	Dicts int64
	// GroupBys counts GROUP BY count queries — the engine's sufficient-
	// statistic workhorse.
	GroupBys int64
	// RowSelects counts plain projections (materialization).
	RowSelects int64
}

var (
	statsMu sync.Mutex
	stats   Stats
)

func bump(f func(*Stats)) {
	statsMu.Lock()
	f(&stats)
	statsMu.Unlock()
}

// SnapshotStats returns the counters accumulated since the last ResetStats.
// The registry is process-global, so concurrent tests touching memsql
// should not assert exact totals unless they own the process.
func SnapshotStats() Stats {
	statsMu.Lock()
	defer statsMu.Unlock()
	return stats
}

// ResetStats zeroes the statement counters.
func ResetStats() {
	statsMu.Lock()
	stats = Stats{}
	statsMu.Unlock()
}

func init() { sql.Register(DriverName, drv{}) }

// Register makes t queryable as table name through any memsql connection.
// Re-registering a name replaces the previous table; the table must not be
// mutated afterwards.
func Register(name string, t *dataset.Table) {
	regMu.Lock()
	defer regMu.Unlock()
	tables[name] = t
}

// Unregister removes a registered table.
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(tables, name)
}

// Open returns a database handle on the shared registry. The DSN is
// currently unused; pass the dataset name or "" — it is accepted either
// way so DSN-driven configuration keeps working if namespacing is added.
func Open(dsn string) (*sql.DB, error) { return sql.Open(DriverName, dsn) }

func lookup(name string) (*dataset.Table, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	t, ok := tables[name]
	if !ok {
		return nil, fmt.Errorf("memsql: no registered table %q", name)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// driver plumbing

type drv struct{}

func (drv) Open(string) (driver.Conn, error) { return conn{}, nil }

type conn struct{}

func (conn) Prepare(query string) (driver.Stmt, error) { return stmt{query: query}, nil }
func (conn) Close() error                              { return nil }
func (conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("memsql: transactions are not supported")
}

// QueryContext implements driver.QueryerContext, the fast path database/sql
// prefers over Prepare.
func (conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("memsql: placeholder arguments are not supported")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return run(query)
}

type stmt struct{ query string }

func (s stmt) Close() error  { return nil }
func (s stmt) NumInput() int { return 0 }
func (s stmt) Exec([]driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("memsql: Exec is not supported")
}
func (s stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("memsql: placeholder arguments are not supported")
	}
	return run(s.query)
}

// rows is a fully materialized result set.
type rows struct {
	cols []string
	data [][]driver.Value
	pos  int
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return nil }
func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.data) {
		return io.EOF
	}
	copy(dest, r.data[r.pos])
	r.pos++
	return nil
}

// ---------------------------------------------------------------------------
// the dialect

// run parses and executes one query.
func run(query string) (driver.Rows, error) {
	q := normalizeSpace(query)
	const selectKw = "SELECT "
	if !strings.HasPrefix(strings.ToUpper(q[:min(len(q), len(selectKw))]), selectKw) {
		return nil, fmt.Errorf("memsql: unsupported statement %q", query)
	}
	rest := q[len(selectKw):]

	fromAt := indexKeyword(rest, "FROM")
	if fromAt < 0 {
		return nil, fmt.Errorf("memsql: missing FROM in %q", query)
	}
	selectList := strings.TrimSpace(rest[:fromAt])
	rest = strings.TrimSpace(rest[fromAt+len("FROM"):])

	var whereText, groupText string
	if at := indexKeyword(rest, "GROUP BY"); at >= 0 {
		groupText = strings.TrimSpace(rest[at+len("GROUP BY"):])
		rest = strings.TrimSpace(rest[:at])
	}
	if at := indexKeyword(rest, "WHERE"); at >= 0 {
		whereText = strings.TrimSpace(rest[at+len("WHERE"):])
		rest = strings.TrimSpace(rest[:at])
	}
	tableName, err := unquoteIdent(strings.TrimSpace(rest))
	if err != nil {
		return nil, fmt.Errorf("memsql: bad table name in %q: %v", query, err)
	}
	t, err := lookup(tableName)
	if err != nil {
		return nil, err
	}

	// Schema probe: SELECT * ... WHERE 1=0.
	if selectList == "*" {
		if whereText != "1=0" {
			return nil, fmt.Errorf("memsql: SELECT * is only supported with WHERE 1=0 (schema probe), got %q", query)
		}
		bump(func(s *Stats) { s.Probes++ })
		return &rows{cols: t.Columns()}, nil
	}

	var pred dataset.Predicate
	if whereText != "" && whereText != "1=0" {
		pred, err = dataset.ParsePredicate(whereText)
		if err != nil {
			return nil, fmt.Errorf("memsql: parsing WHERE of %q: %w", query, err)
		}
	}
	noRows := whereText == "1=0"

	// SELECT COUNT(*) FROM ...
	if strings.EqualFold(selectList, "COUNT(*)") {
		bump(func(s *Stats) { s.RowCounts++ })
		n := 0
		if !noRows {
			counts, err := t.CountsMatching(pred)
			if err != nil {
				return nil, err
			}
			n = counts[""]
		}
		return &rows{cols: []string{"count"}, data: [][]driver.Value{{int64(n)}}}, nil
	}

	// SELECT COUNT(DISTINCT col) FROM ...
	if up := strings.ToUpper(selectList); strings.HasPrefix(up, "COUNT(DISTINCT ") && strings.HasSuffix(selectList, ")") {
		col, err := unquoteIdent(strings.TrimSpace(selectList[len("COUNT(DISTINCT ") : len(selectList)-1]))
		if err != nil {
			return nil, fmt.Errorf("memsql: bad COUNT(DISTINCT) column in %q: %v", query, err)
		}
		bump(func(s *Stats) { s.Cardinalities++ })
		n := 0
		if !noRows {
			counts, err := t.CountsMatching(pred, col)
			if err != nil {
				return nil, err
			}
			n = len(counts)
		}
		return &rows{cols: []string{"count"}, data: [][]driver.Value{{int64(n)}}}, nil
	}

	// SELECT DISTINCT col FROM ...
	if up := strings.ToUpper(selectList); strings.HasPrefix(up, "DISTINCT ") {
		col, err := unquoteIdent(strings.TrimSpace(selectList[len("DISTINCT "):]))
		if err != nil {
			return nil, fmt.Errorf("memsql: bad DISTINCT column in %q: %v", query, err)
		}
		bump(func(s *Stats) { s.Dicts++ })
		out := &rows{cols: []string{col}}
		if !noRows {
			counts, err := t.CountsMatching(pred, col)
			if err != nil {
				return nil, err
			}
			c, err := t.Column(col)
			if err != nil {
				return nil, err
			}
			for k := range counts {
				out.data = append(out.data, []driver.Value{c.Label(k.Field(0))})
			}
		}
		return out, nil
	}

	// Remaining shapes: a plain column list, optionally ending in COUNT(*)
	// with a GROUP BY.
	parts := strings.Split(selectList, ",")
	hasCount := false
	if last := strings.TrimSpace(parts[len(parts)-1]); strings.EqualFold(last, "COUNT(*)") {
		hasCount = true
		parts = parts[:len(parts)-1]
	}
	cols := make([]string, len(parts))
	for i, p := range parts {
		cols[i], err = unquoteIdent(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("memsql: bad select column in %q: %v", query, err)
		}
	}

	if hasCount {
		if groupText == "" {
			return nil, fmt.Errorf("memsql: COUNT(*) needs GROUP BY in %q", query)
		}
		groupCols := strings.Split(groupText, ",")
		if len(groupCols) != len(cols) {
			return nil, fmt.Errorf("memsql: GROUP BY list must match the select list in %q", query)
		}
		for i, g := range groupCols {
			name, err := unquoteIdent(strings.TrimSpace(g))
			if err != nil || name != cols[i] {
				return nil, fmt.Errorf("memsql: GROUP BY list must match the select list in %q", query)
			}
		}
		bump(func(s *Stats) { s.GroupBys++ })
		out := &rows{cols: append(append([]string(nil), cols...), "count")}
		if !noRows {
			counts, err := t.CountsMatching(pred, cols...)
			if err != nil {
				return nil, err
			}
			decoders := make([]*dataset.Column, len(cols))
			for i, c := range cols {
				decoders[i], err = t.Column(c)
				if err != nil {
					return nil, err
				}
			}
			for k, n := range counts {
				row := make([]driver.Value, 0, len(cols)+1)
				for i := range cols {
					row = append(row, decoders[i].Label(k.Field(i)))
				}
				row = append(row, int64(n))
				out.data = append(out.data, row)
			}
		}
		return out, nil
	}

	if groupText != "" {
		return nil, fmt.Errorf("memsql: GROUP BY without COUNT(*) in %q", query)
	}

	// Plain projection, preserving row order.
	bump(func(s *Stats) { s.RowSelects++ })
	out := &rows{cols: cols}
	if noRows {
		return out, nil
	}
	decoders := make([]*dataset.Column, len(cols))
	for i, c := range cols {
		decoders[i], err = t.Column(c)
		if err != nil {
			return nil, err
		}
	}
	match := []bool(nil)
	if pred != nil {
		match, err = pred.Eval(t)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < t.NumRows(); i++ {
		if match != nil && !match[i] {
			continue
		}
		row := make([]driver.Value, len(cols))
		for j := range cols {
			row[j] = decoders[j].Value(i)
		}
		out.data = append(out.data, row)
	}
	return out, nil
}

// normalizeSpace collapses runs of whitespace into single spaces outside
// single- or double-quoted regions, so string literals keep their exact
// bytes while the parser sees a canonical statement shape.
func normalizeSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inSingle, inDouble, pendingSpace := false, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !inSingle && !inDouble {
			switch c {
			case ' ', '\t', '\n', '\r':
				if b.Len() > 0 {
					pendingSpace = true
				}
				continue
			}
		}
		if pendingSpace {
			b.WriteByte(' ')
			pendingSpace = false
		}
		switch c {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		}
		b.WriteByte(c)
	}
	return b.String()
}

// indexKeyword finds the first occurrence of keyword (case-insensitive,
// surrounded by spaces or string boundaries) outside single- or
// double-quoted regions. Returns -1 when absent.
func indexKeyword(s, keyword string) int {
	upper := strings.ToUpper(s)
	kw := strings.ToUpper(keyword)
	inSingle, inDouble := false, false
	for i := 0; i+len(kw) <= len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
			continue
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
			continue
		}
		if inSingle || inDouble {
			continue
		}
		if upper[i:i+len(kw)] == kw {
			before := i == 0 || s[i-1] == ' '
			after := i+len(kw) == len(s) || s[i+len(kw)] == ' '
			if before && after {
				return i
			}
		}
	}
	return -1
}

// unquoteIdent strips ANSI double quotes (with "" escaping) off an
// identifier, accepting bare identifiers as-is.
func unquoteIdent(s string) (string, error) {
	if s == "" {
		return "", fmt.Errorf("empty identifier")
	}
	if s[0] != '"' {
		if strings.ContainsAny(s, `"' `) {
			return "", fmt.Errorf("malformed identifier %q", s)
		}
		return s, nil
	}
	if len(s) < 2 || s[len(s)-1] != '"' {
		return "", fmt.Errorf("unterminated quoted identifier %q", s)
	}
	return strings.ReplaceAll(s[1:len(s)-1], `""`, `"`), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
