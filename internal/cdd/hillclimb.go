package cdd

import (
	"context"
	"fmt"
	"sort"

	"hypdb/internal/dag"
	"hypdb/internal/hyperr"
	"hypdb/source"
)

// HillClimbConfig configures greedy score-based search.
type HillClimbConfig struct {
	// Score selects AIC, BIC or BDeu.
	Score ScoreType
	// ESS is the equivalent sample size for BDeu; zero means 1.
	ESS float64
	// MaxParents caps the in-degree; zero means DefaultMaxParents.
	MaxParents int
	// MaxIter caps the number of greedy steps; zero means DefaultMaxIter.
	MaxIter int
}

// DefaultMaxParents bounds the in-degree during hill climbing. The paper's
// RandomData DAGs have bounded fan-ins (Sec 4), so this does not restrict
// the search in practice.
const DefaultMaxParents = 6

// DefaultMaxIter bounds greedy steps.
const DefaultMaxIter = 500

// HillClimb learns a DAG by greedy local search over edge additions,
// deletions and reversals, the standard score-based approach the paper
// benchmarks as HC(BDE), HC(AIC) and HC(BIC) (Fig 5).
func HillClimb(ctx context.Context, rel source.Relation, attrs []string, cfg HillClimbConfig) (*dag.DAG, error) {
	if len(attrs) == 0 {
		attrs = rel.Attributes()
	}
	for _, a := range attrs {
		if !rel.HasAttribute(a) {
			return nil, fmt.Errorf("cdd: no column %q: %w", a, hyperr.ErrUnknownAttribute)
		}
	}
	maxParents := cfg.MaxParents
	if maxParents <= 0 {
		maxParents = DefaultMaxParents
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	scorer := NewScorer(rel, cfg.Score, cfg.ESS)

	g, err := dag.New(attrs...)
	if err != nil {
		return nil, err
	}
	// Family scores for the empty graph.
	family := make(map[string]float64, len(attrs))
	for _, a := range attrs {
		v, err := scorer.Family(ctx, a, nil)
		if err != nil {
			return nil, err
		}
		family[a] = v
	}

	parentsOf := func(node string) []string {
		ps, _ := g.ParentNames(node)
		return ps
	}

	type operation struct {
		kind  string // "add", "del", "rev"
		u, v  string
		delta float64
	}

	for iter := 0; iter < maxIter; iter++ {
		// The greedy sweep scores O(|attrs|²) neighbor graphs per step;
		// cancellation is honored between steps.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best := operation{delta: 1e-9} // require strict improvement
		for i, u := range attrs {
			for j, v := range attrs {
				if i == j {
					continue
				}
				ui, vi := g.Index(u), g.Index(v)
				switch {
				case !g.HasEdge(ui, vi) && !g.HasEdge(vi, ui):
					// Consider adding u → v.
					if len(g.Parents(vi)) >= maxParents {
						continue
					}
					if wouldCycle(g, ui, vi) {
						continue
					}
					newScore, err := scorer.Family(ctx, v, append(parentsOf(v), u))
					if err != nil {
						return nil, err
					}
					if d := newScore - family[v]; d > best.delta {
						best = operation{kind: "add", u: u, v: v, delta: d}
					}
				case g.HasEdge(ui, vi):
					// Consider deleting u → v.
					newScore, err := scorer.Family(ctx, v, removeString(parentsOf(v), u))
					if err != nil {
						return nil, err
					}
					if d := newScore - family[v]; d > best.delta {
						best = operation{kind: "del", u: u, v: v, delta: d}
					}
					// Consider reversing u → v to v → u.
					if len(g.Parents(ui)) >= maxParents {
						continue
					}
					if wouldCycleAfterReversal(g, ui, vi) {
						continue
					}
					newV, err := scorer.Family(ctx, v, removeString(parentsOf(v), u))
					if err != nil {
						return nil, err
					}
					newU, err := scorer.Family(ctx, u, append(parentsOf(u), v))
					if err != nil {
						return nil, err
					}
					if d := (newV - family[v]) + (newU - family[u]); d > best.delta {
						best = operation{kind: "rev", u: u, v: v, delta: d}
					}
				}
			}
		}
		if best.kind == "" {
			break // local optimum
		}
		// Apply the operation by rebuilding the graph (edge removal is not
		// part of the DAG API; rebuilding keeps the type's invariants).
		g, err = applyOp(g, attrs, best.kind, best.u, best.v)
		if err != nil {
			return nil, err
		}
		for _, node := range []string{best.u, best.v} {
			v, err := scorer.Family(ctx, node, parentsOfGraph(g, node))
			if err != nil {
				return nil, err
			}
			family[node] = v
		}
	}
	return g, nil
}

func parentsOfGraph(g *dag.DAG, node string) []string {
	ps, _ := g.ParentNames(node)
	return ps
}

// wouldCycle reports whether adding u → v creates a directed cycle.
func wouldCycle(g *dag.DAG, u, v int) bool {
	// A cycle appears iff v already reaches u.
	return reaches(g, v, u)
}

// wouldCycleAfterReversal reports whether reversing u → v creates a cycle:
// after removing u → v, does u still reach v? If so, adding v → u cycles.
func wouldCycleAfterReversal(g *dag.DAG, u, v int) bool {
	// Search for a path u ⇒ v that avoids the direct edge u → v.
	seen := make([]bool, g.NumNodes())
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Children(x) {
			if x == u && c == v {
				continue // skip the edge being reversed
			}
			if c == v {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

func reaches(g *dag.DAG, u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, g.NumNodes())
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Children(x) {
			if c == v {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// applyOp rebuilds the DAG with one edge operation applied.
func applyOp(g *dag.DAG, attrs []string, kind, u, v string) (*dag.DAG, error) {
	out, err := dag.New(attrs...)
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges() {
		from, to := g.Name(e[0]), g.Name(e[1])
		if from == u && to == v {
			switch kind {
			case "del":
				continue
			case "rev":
				if err := out.AddEdge(v, u); err != nil {
					return nil, err
				}
				continue
			}
		}
		if err := out.AddEdge(from, to); err != nil {
			return nil, err
		}
	}
	if kind == "add" {
		if err := out.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func removeString(items []string, drop string) []string {
	out := make([]string, 0, len(items))
	for _, x := range items {
		if x != drop {
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}
