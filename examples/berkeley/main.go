// Berkeley: the 1973 graduate-admissions discrimination case (paper Sec 7.3,
// Fig 4 top), run on the real published counts from Bickel, Hammel &
// O'Connell (1975). The aggregate admission rates suggest discrimination
// against women; HypDB discovers Department as the explanation and the
// conditioned comparison reverses the trend — "the completely automatic
// discovery of the revolutionary insights from a famous 1973 discrimination
// case".
//
//	go run ./examples/berkeley
package main

import (
	"context"
	"fmt"
	"log"

	"hypdb"
	"hypdb/internal/datagen"
)

func main() {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BerkeleyData: %d applications (real 1973 figures)\n\n", tab.NumRows())

	db := hypdb.Open(tab)
	ctx := context.Background()

	q := datagen.BerkeleyQuery()
	ans, err := db.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The lawsuit's evidence — admission rate by gender:")
	for _, r := range ans.Rows {
		fmt.Printf("  %-7s %.1f%% admitted (n=%d)\n", r.Treatment, 100*r.Avgs[0], r.Count)
	}

	// Per-department rates: the famous reversal.
	perDept := q
	perDept.Groupings = []string{"Department"}
	byDept, err := db.Run(ctx, perDept)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAdmission rate by gender within each department:")
	comps, err := byDept.Compare()
	if err != nil {
		log.Fatal(err)
	}
	femaleWins := 0
	for _, c := range comps {
		marker := ""
		if c.Avg0[0] > c.Avg1[0] { // Avg0 = Female (lexicographic)
			marker = "  ← women admitted at a higher rate"
			femaleWins++
		}
		fmt.Printf("  dept %s: female %.1f%%, male %.1f%%%s\n",
			c.Context[0], 100*c.Avg0[0], 100*c.Avg1[0], marker)
	}
	fmt.Printf("\nWomen have the higher admission rate in %d of %d departments.\n", femaleWins, len(comps))

	fmt.Println("\nHypDB's automatic analysis:")
	report, err := db.Analyze(ctx, q, hypdb.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	fmt.Println("Reading the fine-grained explanations: women applied mostly to the")
	fmt.Println("competitive departments (C–F) while men applied to A and B, whose")
	fmt.Println("acceptance rates were far higher — exactly Bickel et al.'s conclusion.")
}
