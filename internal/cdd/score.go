package cdd

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"hypdb/internal/dataset"
	"hypdb/source"
)

// ScoreType selects the decomposable network score used by hill climbing.
type ScoreType int

const (
	// AIC is log-likelihood − |params| (Akaike).
	AIC ScoreType = iota
	// BIC is log-likelihood − |params|·ln(n)/2 (Schwarz).
	BIC
	// BDeu is the Bayesian Dirichlet equivalent uniform score.
	BDeu
)

// String implements fmt.Stringer.
func (s ScoreType) String() string {
	switch s {
	case AIC:
		return "AIC"
	case BIC:
		return "BIC"
	case BDeu:
		return "BDeu"
	default:
		return fmt.Sprintf("ScoreType(%d)", int(s))
	}
}

// Scorer computes per-node family scores score(X | Pa) with memoization.
// All three scores are decomposable, so hill climbing only rescores the
// families an operation touches.
type Scorer struct {
	rel  source.Relation
	typ  ScoreType
	ess  float64 // equivalent sample size for BDeu
	mu   sync.Mutex
	memo map[string]float64
}

// NewScorer builds a scorer over rel. ess only matters for BDeu; zero means 1.
func NewScorer(rel source.Relation, typ ScoreType, ess float64) *Scorer {
	if ess <= 0 {
		ess = 1
	}
	return &Scorer{rel: rel, typ: typ, ess: ess, memo: make(map[string]float64)}
}

// Family scores node given the parent set.
func (s *Scorer) Family(ctx context.Context, node string, parents []string) (float64, error) {
	key := familyKey(node, parents)
	s.mu.Lock()
	if v, ok := s.memo[key]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()
	v, err := s.compute(ctx, node, parents)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.memo[key] = v
	s.mu.Unlock()
	return v, nil
}

func familyKey(node string, parents []string) string {
	ps := append([]string(nil), parents...)
	sort.Strings(ps)
	return node + "|" + strings.Join(ps, ",")
}

func (s *Scorer) compute(ctx context.Context, node string, parents []string) (float64, error) {
	r, err := source.Card(ctx, s.rel, node) // categories of the node
	if err != nil {
		return 0, err
	}
	n, err := s.rel.NumRows(ctx)
	if err != nil {
		return 0, err
	}

	// Dense fast path: one flat tabulation over (parents, node) yields both
	// the joint and — by marginalizing client-side — the parent counts,
	// halving the backend round trips of every hill-climb rescore.
	jointAttrs := append(append([]string(nil), parents...), node)
	if dc, err := source.Dense(ctx, s.rel, jointAttrs, nil, 0); err != nil {
		return 0, err
	} else if dc != nil {
		return s.computeDense(dc, len(parents), r, n)
	}

	// Sparse fallback: joint counts over (parents, node) and marginal
	// counts over parents.
	joint, err := s.rel.Counts(ctx, jointAttrs, nil)
	if err != nil {
		return 0, err
	}
	var parentCounts map[dataset.GroupKey]int
	if len(parents) == 0 {
		parentCounts = map[dataset.GroupKey]int{"": n}
	} else {
		parentCounts, err = s.rel.Counts(ctx, parents, nil)
		if err != nil {
			return 0, err
		}
	}

	switch s.typ {
	case AIC, BIC:
		// LL = Σ_{pa,x} n_{pa,x}·ln(n_{pa,x}/n_pa). Group joint counts by
		// their parent prefix: keys are length-prefixed code tuples, so the
		// parent part is the first 4·|parents| bytes. Keys are visited in
		// sorted order so the floating-point sum — and hence hill-climb
		// tie-breaking — is reproducible across runs. (The dense path is
		// deterministic too, but sums in cell order; the two paths may
		// differ in final-ulp rounding, which only score comparisons of
		// near-exactly-tied families could observe.)
		jkeys := make([]string, 0, len(joint))
		for k := range joint {
			jkeys = append(jkeys, string(k))
		}
		sort.Strings(jkeys)
		ll := 0.0
		plen := 4 * len(parents)
		for _, jk := range jkeys {
			c := joint[dataset.GroupKey(jk)]
			if c == 0 {
				continue
			}
			pk := dataset.GroupKey(jk[:plen])
			np := parentCounts[pk]
			ll += float64(c) * math.Log(float64(c)/float64(np))
		}
		// Parameter count uses observed parent configurations (bnlearn
		// convention: unobserved configurations carry no parameters).
		q := len(parentCounts)
		params := float64(q * (r - 1))
		if s.typ == AIC {
			return ll - params, nil
		}
		return ll - params/2*math.Log(float64(n)), nil

	case BDeu:
		// Full q counts all parent configurations (product of cards), as
		// BDeu's prior is spread over all of them.
		q := 1
		for _, p := range parents {
			card, err := source.Card(ctx, s.rel, p)
			if err != nil {
				return 0, err
			}
			q *= card
		}
		aPa := s.ess / float64(q)
		aCell := s.ess / float64(q*r)
		lgAPa, _ := math.Lgamma(aPa)
		lgACell, _ := math.Lgamma(aCell)

		score := 0.0
		plen := 4 * len(parents)
		// Group joint cells by parent configuration.
		type paAgg struct {
			total int
			cells []int
		}
		byPa := make(map[dataset.GroupKey]*paAgg)
		for k, c := range joint {
			pk := dataset.GroupKey(string(k)[:plen])
			agg := byPa[pk]
			if agg == nil {
				agg = &paAgg{}
				byPa[pk] = agg
			}
			agg.total += c
			agg.cells = append(agg.cells, c)
		}
		// Deterministic iteration.
		keys := make([]string, 0, len(byPa))
		for k := range byPa {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		for _, k := range keys {
			agg := byPa[dataset.GroupKey(k)]
			lg1, _ := math.Lgamma(aPa + float64(agg.total))
			score += lgAPa - lg1
			sort.Ints(agg.cells)
			for _, c := range agg.cells {
				lg2, _ := math.Lgamma(aCell + float64(c))
				score += lg2 - lgACell
			}
		}
		// Unobserved parent configurations contribute lnΓ(aPa)−lnΓ(aPa) = 0.
		return score, nil
	}
	return 0, fmt.Errorf("cdd: unknown score type %v", s.typ)
}

// computeDense scores a family from the dense (parents..., node) view: the
// node is the last (highest-stride) dimension, so the parent configuration
// of cell i is i mod prodPa and the parent marginal is one O(cells) fold.
func (s *Scorer) computeDense(dc *dataset.DenseCounts, nParents, r, n int) (float64, error) {
	prodPa := 1
	for _, card := range dc.Cards[:nParents] {
		prodPa *= card
	}
	paCounts := make([]int, prodPa)
	for cell, c := range dc.Cells {
		paCounts[cell%prodPa] += c
	}

	switch s.typ {
	case AIC, BIC:
		// LL = Σ_{pa,x} n_{pa,x}·ln(n_{pa,x}/n_pa).
		ll := 0.0
		for cell, c := range dc.Cells {
			if c == 0 {
				continue
			}
			np := paCounts[cell%prodPa]
			ll += float64(c) * math.Log(float64(c)/float64(np))
		}
		// Parameter count uses observed parent configurations (bnlearn
		// convention: unobserved configurations carry no parameters).
		q := 0
		for _, c := range paCounts {
			if c > 0 {
				q++
			}
		}
		params := float64(q * (r - 1))
		if s.typ == AIC {
			return ll - params, nil
		}
		return ll - params/2*math.Log(float64(n)), nil

	case BDeu:
		// Full q counts all parent configurations (product of cards), as
		// BDeu's prior is spread over all of them.
		q := 1
		for _, card := range dc.Cards[:nParents] {
			q *= card
		}
		aPa := s.ess / float64(q)
		aCell := s.ess / float64(q*r)
		lgAPa, _ := math.Lgamma(aPa)
		lgACell, _ := math.Lgamma(aCell)

		score := 0.0
		cells := make([]int, 0, r)
		for pa := 0; pa < prodPa; pa++ {
			if paCounts[pa] == 0 {
				// Unobserved parent configurations contribute
				// lnΓ(aPa)−lnΓ(aPa) = 0.
				continue
			}
			cells = cells[:0]
			for v, cell := 0, pa; v < r; v, cell = v+1, cell+prodPa {
				if c := dc.Cells[cell]; c > 0 {
					cells = append(cells, c)
				}
			}
			lg1, _ := math.Lgamma(aPa + float64(paCounts[pa]))
			score += lgAPa - lg1
			sort.Ints(cells)
			for _, c := range cells {
				lg2, _ := math.Lgamma(aCell + float64(c))
				score += lg2 - lgACell
			}
		}
		return score, nil
	}
	return 0, fmt.Errorf("cdd: unknown score type %v", s.typ)
}

// Total scores an entire parent map (node → parents).
func (s *Scorer) Total(ctx context.Context, parents map[string][]string) (float64, error) {
	// Deterministic order.
	nodes := make([]string, 0, len(parents))
	for n := range parents {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	total := 0.0
	for _, n := range nodes {
		v, err := s.Family(ctx, n, parents[n])
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}
