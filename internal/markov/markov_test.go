package markov

import (
	"context"

	"math/rand"
	"reflect"
	"testing"

	"hypdb/internal/dag"
	"hypdb/internal/dataset"
	"hypdb/internal/independence"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

// paperDAG is the Fig 2 graph: Z → T ← W, T → Y, T → C ← D.
func paperDAG(t *testing.T) *dag.DAG {
	t.Helper()
	g := dag.MustNew("Z", "W", "T", "Y", "C", "D")
	for _, e := range [][2]string{{"Z", "T"}, {"W", "T"}, {"T", "Y"}, {"T", "C"}, {"D", "C"}} {
		g.MustAddEdge(e[0], e[1])
	}
	return g
}

// dummyTable returns a table whose columns match the DAG's node names; the
// oracle ignores the data.
func dummyTable(t *testing.T, g *dag.DAG) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder(g.Names()...)
	row := make([]string, g.NumNodes())
	for i := range row {
		row[i] = "0"
	}
	b.MustAdd(row...)
	row[0] = "1"
	b.MustAdd(row...)
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func others(g *dag.DAG, target string) []string {
	var out []string
	for _, n := range g.Names() {
		if n != target {
			out = append(out, n)
		}
	}
	return out
}

func TestGrowShrinkOracleRecoversBoundary(t *testing.T) {
	g := paperDAG(t)
	tab := dummyTable(t, g)
	cfg := Config{Tester: dag.Oracle{G: g}}
	for _, target := range g.Names() {
		want, err := g.MarkovBoundaryNames(target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GrowShrink(context.Background(), mem.New(tab), target, others(g, target), cfg)
		if err != nil {
			t.Fatalf("GrowShrink(%s): %v", target, err)
		}
		if !sameStringSet(got, want) {
			t.Errorf("GrowShrink MB(%s) = %v, want %v", target, got, want)
		}
	}
}

func TestIAMBOracleRecoversBoundary(t *testing.T) {
	g := paperDAG(t)
	tab := dummyTable(t, g)
	cfg := Config{Tester: dag.Oracle{G: g}}
	for _, target := range g.Names() {
		want, err := g.MarkovBoundaryNames(target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := IAMB(context.Background(), mem.New(tab), target, others(g, target), cfg)
		if err != nil {
			t.Fatalf("IAMB(%s): %v", target, err)
		}
		if !sameStringSet(got, want) {
			t.Errorf("IAMB MB(%s) = %v, want %v", target, got, want)
		}
	}
}

func TestGrowShrinkOracleRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g, err := dag.RandomDAG(rng, 8, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		tab := dummyTable(t, g)
		cfg := Config{Tester: dag.Oracle{G: g}}
		target := g.Name(rng.Intn(8))
		want, err := g.MarkovBoundaryNames(target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GrowShrink(context.Background(), mem.New(tab), target, others(g, target), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !sameStringSet(got, want) {
			t.Errorf("trial %d: MB(%s) = %v, want %v", trial, target, got, want)
		}
	}
}

func TestGrowShrinkOnSampledData(t *testing.T) {
	// Sample a strong-CPT network and check boundary recovery from data
	// with the chi-square test.
	rng := rand.New(rand.NewSource(2))
	g := dag.MustNew("A", "B", "T", "Y")
	g.MustAddEdge("A", "T")
	g.MustAddEdge("B", "T")
	g.MustAddEdge("T", "Y")
	bn, err := dag.RandomBayesNet(rng, g, 2, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rng, 30000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tester: independence.ChiSquare{Est: stats.MillerMadow}}
	got, err := GrowShrink(context.Background(), mem.New(tab), "T", []string{"A", "B", "Y"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := g.MarkovBoundaryNames("T")
	if !sameStringSet(got, want) {
		t.Errorf("MB(T) from data = %v, want %v", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	g := paperDAG(t)
	tab := dummyTable(t, g)
	if _, err := GrowShrink(context.Background(), mem.New(tab), "T", []string{"Z"}, Config{}); err == nil {
		t.Error("nil tester accepted")
	}
	cfg := Config{Tester: dag.Oracle{G: g}}
	if _, err := GrowShrink(context.Background(), mem.New(tab), "missing", []string{"Z"}, cfg); err == nil {
		t.Error("missing target accepted")
	}
	if _, err := GrowShrink(context.Background(), mem.New(tab), "T", []string{"missing"}, cfg); err == nil {
		t.Error("missing candidate accepted")
	}
	if _, err := GrowShrink(context.Background(), mem.New(tab), "T", []string{"Z", "Z"}, cfg); err == nil {
		t.Error("duplicate candidate accepted")
	}
	if _, err := IAMB(context.Background(), mem.New(tab), "T", []string{"Z"}, Config{}); err == nil {
		t.Error("IAMB nil tester accepted")
	}
}

func TestTargetExcludedFromCandidates(t *testing.T) {
	g := paperDAG(t)
	tab := dummyTable(t, g)
	cfg := Config{Tester: dag.Oracle{G: g}}
	// Passing the target among candidates is tolerated (skipped).
	got, err := GrowShrink(context.Background(), mem.New(tab), "T", g.Names(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range got {
		if x == "T" {
			t.Error("target appeared in its own boundary")
		}
	}
}

func TestMaxBoundaryCap(t *testing.T) {
	g := paperDAG(t)
	tab := dummyTable(t, g)
	cfg := Config{Tester: dag.Oracle{G: g}, MaxBoundary: 2}
	got, err := GrowShrink(context.Background(), mem.New(tab), "T", others(g, "T"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 2 {
		t.Errorf("boundary size %d exceeds cap 2", len(got))
	}
}

func TestEmptyCandidates(t *testing.T) {
	g := paperDAG(t)
	tab := dummyTable(t, g)
	cfg := Config{Tester: dag.Oracle{G: g}}
	got, err := GrowShrink(context.Background(), mem.New(tab), "T", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("MB over empty candidates = %v, want empty", got)
	}
}

func TestBoundaryDeterministicOrder(t *testing.T) {
	g := paperDAG(t)
	tab := dummyTable(t, g)
	cfg := Config{Tester: dag.Oracle{G: g}}
	a, err := GrowShrink(context.Background(), mem.New(tab), "T", others(g, "T"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GrowShrink(context.Background(), mem.New(tab), "T", others(g, "T"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("boundary order not deterministic: %v vs %v", a, b)
	}
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]bool)
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}
