package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hypdb/api"
	"hypdb/internal/datagen"
)

// newTestServer starts an httptest server over a fresh Server and returns a
// typed client for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *api.Client) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, api.NewClient(ts.URL, ts.Client())
}

// berkeleyCSV renders the Berkeley dataset as CSV text.
func berkeleyCSV(t *testing.T) string {
	t.Helper()
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestDatasetLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	csv := berkeleyCSV(t)

	info, err := c.CreateDataset(ctx, "berkeley", csv)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "berkeley" || info.Rows != datagen.BerkeleyRows() || info.Cols != 3 {
		t.Fatalf("created %+v", info)
	}

	// Duplicate names are rejected: datasets are immutable.
	if _, err := c.CreateDataset(ctx, "berkeley", csv); !hasCode(err, api.CodeDatasetExists, http.StatusConflict) {
		t.Fatalf("duplicate create: %v", err)
	}

	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "berkeley" {
		t.Fatalf("list = %+v", list)
	}

	stats, err := c.Stats(ctx, "berkeley")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != info.Rows || len(stats.Attributes) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	wantAttrs := map[string]int{"Gender": 2, "Department": 6, "Accepted": 2}
	for _, a := range stats.Attributes {
		if wantAttrs[a.Name] != a.Distinct {
			t.Errorf("attribute %s distinct=%d, want %d", a.Name, a.Distinct, wantAttrs[a.Name])
		}
	}

	if err := c.DeleteDataset(ctx, "berkeley"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(ctx, "berkeley"); !hasCode(err, api.CodeDatasetNotFound, http.StatusNotFound) {
		t.Fatalf("stats after delete: %v", err)
	}
	if err := c.DeleteDataset(ctx, "berkeley"); !hasCode(err, api.CodeDatasetNotFound, http.StatusNotFound) {
		t.Fatalf("double delete: %v", err)
	}

	// Raw text/csv upload with the name in the query string.
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
}

func TestRawCSVUpload(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/datasets?name=tiny", "text/csv",
		strings.NewReader("a,b\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var info api.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Rows != 2 || info.Cols != 2 {
		t.Fatalf("info = %+v", info)
	}

	// ?shards= on the raw CSV path opens the sharded (appendable)
	// backend instead of being silently ignored.
	resp2, err := http.Post(ts.URL+"/v1/datasets?name=tiny_sharded&shards=2", "text/csv",
		strings.NewReader("a,b\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp2.Body)
		t.Fatalf("sharded upload status %d: %s", resp2.StatusCode, body)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Shards != 2 {
		t.Fatalf("shards = %d, want 2 (query param ignored?)", info.Shards)
	}

	// A malformed value is rejected loudly, not dropped.
	resp3, err := http.Post(ts.URL+"/v1/datasets?name=bad&shards=two", "text/csv",
		strings.NewReader("a,b\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shards value: status %d, want 400", resp3.StatusCode)
	}
}

func TestAnalyzeBerkeley(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}

	rep, err := c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Berkeley's causal structure (Gender → Department → Accepted) puts
	// Department in the mediator role: the bias surfaces in the
	// direct-effect verdict, w.r.t. covariates ∪ mediators.
	if !rep.Biased {
		t.Error("Berkeley query not flagged biased")
	}
	if len(rep.Mediators) != 1 || rep.Mediators[0] != "Department" {
		t.Errorf("mediators = %v, want [Department]", rep.Mediators)
	}
	if rep.CD == nil || !rep.CD.UsedFallback {
		t.Errorf("CD summary = %+v, want fallback marked", rep.CD)
	}
	if len(rep.Answer) != 2 {
		t.Fatalf("answer rows = %d, want 2", len(rep.Answer))
	}
	if len(rep.OriginalComparisons) != 1 || rep.OriginalComparisons[0].Diffs[0] <= 0 {
		t.Errorf("original comparison = %+v, want Male−Female > 0", rep.OriginalComparisons)
	}
	if rep.RewrittenDirect == nil {
		t.Fatal("no rewritten direct-effect answer")
	}
	if len(rep.DirectComparisons) != 1 ||
		rep.DirectComparisons[0].Diffs[0] >= rep.OriginalComparisons[0].Diffs[0] {
		t.Errorf("direct comparison = %+v, want smaller than the original diff %v",
			rep.DirectComparisons, rep.OriginalComparisons[0].Diffs[0])
	}
	if rep.Text == "" || !strings.Contains(rep.Text, "SQL Query:") {
		t.Error("report text panel missing")
	}
}

func TestAnalyzeWithWhereAndGroupings(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query: api.Query{
			Treatment: "Gender",
			Outcomes:  []string{"Accepted"},
			Where:     "Department IN ('A','B','C')",
		},
		Options: api.Options{Seed: 1, SkipDirect: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, row := range rep.Answer {
		n += row.Count
	}
	if n >= datagen.BerkeleyRows() {
		t.Errorf("WHERE clause not applied: %d rows selected", n)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	base := api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}}

	cases := []struct {
		name   string
		req    api.AnalyzeRequest
		code   string
		status int
	}{
		{"unknown dataset", api.AnalyzeRequest{Dataset: "nope", Query: base},
			api.CodeDatasetNotFound, http.StatusNotFound},
		{"bad predicate", api.AnalyzeRequest{Dataset: "berkeley",
			Query: api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}, Where: "Gender = "}},
			api.CodeBadPredicate, http.StatusBadRequest},
		{"unknown attribute", api.AnalyzeRequest{Dataset: "berkeley",
			Query: api.Query{Treatment: "Wrong", Outcomes: []string{"Accepted"}}},
			api.CodeUnknownAttribute, http.StatusUnprocessableEntity},
		{"empty selection", api.AnalyzeRequest{Dataset: "berkeley",
			Query: api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}, Where: "Department = 'Z'"}},
			api.CodeEmptySelection, http.StatusUnprocessableEntity},
		{"bad method", api.AnalyzeRequest{Dataset: "berkeley", Query: base,
			Options: api.Options{Method: "magic"}},
			api.CodeBadRequest, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, err := c.Analyze(ctx, tc.req)
		if !hasCode(err, tc.code, tc.status) {
			t.Errorf("%s: got %v, want code %s status %d", tc.name, err, tc.code, tc.status)
		}
	}

	// Malformed CSV upload.
	if _, err := c.CreateDataset(ctx, "bad", "a,b\n1\n"); !hasCode(err, api.CodeMalformedCSV, http.StatusBadRequest) {
		t.Errorf("ragged CSV: %v", err)
	}
	if _, err := c.CreateDataset(ctx, "bad name!", "a\n1\n"); !hasCode(err, api.CodeBadRequest, http.StatusBadRequest) {
		t.Errorf("bad dataset name: %v", err)
	}
}

// TestConcurrentAnalyzeSharesDiscovery is the ISSUE's load test: ≥64
// concurrent identical /v1/analyze requests must trigger exactly one
// covariate discovery (the session cache single-flights it) and agree on
// every answer.
func TestConcurrentAnalyzeSharesDiscovery(t *testing.T) {
	srv, c := newTestServer(t, Config{MaxConcurrentPerDataset: 8})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}

	const n = 64
	req := api.AnalyzeRequest{
		Dataset: "berkeley",
		// SkipDirect keeps the pipeline to exactly one discovery call per
		// request, so the cache counters are exact.
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 7, SkipDirect: true},
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		reports []*api.Report
		errs    []error
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rep, err := c.Analyze(ctx, req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			reports = append(reports, rep)
		}()
	}
	close(start)
	wg.Wait()

	if len(errs) > 0 {
		t.Fatalf("%d/%d requests failed; first: %v", len(errs), n, errs[0])
	}
	db, ok := srv.DB("berkeley")
	if !ok {
		t.Fatal("dataset vanished")
	}
	st := db.Stats()
	if st.CDComputes != 1 {
		t.Errorf("CDComputes = %d, want 1 — covariate discovery was not shared", st.CDComputes)
	}
	if st.CDHits != n-1 {
		t.Errorf("CDHits = %d, want %d", st.CDHits, n-1)
	}

	// All responses must agree once per-request wall-clock noise (Timing,
	// the rendered Text panel) is stripped.
	norm := func(r *api.Report) *api.Report {
		cp := *r
		cp.Timing = api.Timing{}
		cp.Text = ""
		return &cp
	}
	want := norm(reports[0])
	for i, rep := range reports[1:] {
		if got := norm(rep); !reflect.DeepEqual(got, want) {
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			t.Fatalf("response %d disagrees:\n got %s\nwant %s", i+1, gj, wj)
		}
	}

	stats, err := c.Stats(ctx, "berkeley")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyses != n {
		t.Errorf("analyses counter = %d, want %d", stats.Analyses, n)
	}
	if stats.Cache.CDComputes != 1 || stats.Cache.CDHits != n-1 {
		t.Errorf("stats cache = %+v", stats.Cache)
	}
}

func TestBatchSharesCache(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	q := api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}}
	reps, err := c.AnalyzeBatch(ctx, api.BatchRequest{
		Dataset: "berkeley",
		Queries: []api.Query{q, q, q, q},
		Options: api.Options{Seed: 1, SkipDirect: true, Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("got %d reports", len(reps))
	}
	for i, rep := range reps {
		if rep == nil || len(rep.Answer) != 2 || len(rep.OriginalComparisons) != 1 {
			t.Errorf("report %d = %+v", i, rep)
		}
	}
	db, _ := srv.DB("berkeley")
	if st := db.Stats(); st.CDComputes != 1 {
		t.Errorf("CDComputes = %d, want 1 (batch items share the cache)", st.CDComputes)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.AnalysesTotal != 4 || m.Datasets != 1 || m.Cache.CDComputes != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestBatchIsolatesErrors: a batch mixing valid and invalid queries returns
// per-item error entries aligned with the request order instead of failing
// wholesale — every valid query still gets its report.
func TestBatchIsolatesErrors(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	good := api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}}
	bad := api.Query{Treatment: "NoSuchColumn", Outcomes: []string{"Accepted"}}
	reps, errs, err := c.AnalyzeBatchSettled(ctx, api.BatchRequest{
		Dataset: "berkeley",
		Queries: []api.Query{good, bad, good},
		Options: api.Options{Seed: 1, SkipDirect: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 || len(errs) != 3 {
		t.Fatalf("got %d reports / %d errors, want 3 / 3", len(reps), len(errs))
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Errorf("valid query %d failed: %v", i, errs[i])
		}
		if reps[i] == nil || len(reps[i].Answer) != 2 {
			t.Errorf("valid query %d report = %+v", i, reps[i])
		}
	}
	if reps[1] != nil {
		t.Error("invalid query produced a report")
	}
	if errs[1] == nil || errs[1].Code != api.CodeUnknownAttribute {
		t.Errorf("invalid query error = %+v, want %s", errs[1], api.CodeUnknownAttribute)
	}
	if !strings.Contains(errs[1].Message, "query 1") {
		t.Errorf("error message %q does not name its query", errs[1].Message)
	}

	// The strict wrapper keeps the old all-or-nothing contract.
	if _, err := c.AnalyzeBatch(ctx, api.BatchRequest{
		Dataset: "berkeley",
		Queries: []api.Query{good, bad},
		Options: api.Options{Seed: 1, SkipDirect: true},
	}); err == nil {
		t.Error("AnalyzeBatch accepted a batch with a failing query")
	}

	// Planner activity from the batches lands in /v1/metrics.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := srv.DB("berkeley")
	if got, want := m.Planner, db.Stats().Planner; got.Plans != want.Plans || got.Plans == 0 {
		t.Errorf("metrics planner = %+v, session stats = %+v", got, want)
	}
}

// TestRequestTimeout: a Monte-Carlo analysis that cannot finish inside the
// server's request timeout is cancelled and reported as a 504.
func TestRequestTimeout(t *testing.T) {
	_, c := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Method: "mit", Permutations: 50_000_000, Seed: 1},
	})
	if !hasCode(err, api.CodeTimeout, http.StatusGatewayTimeout) {
		t.Fatalf("got %v, want %s", err, api.CodeTimeout)
	}
}

// TestShutdownCancelsInflight: Close propagates cancellation into running
// permutation loops; the stuck request fails fast with 503 instead of
// finishing minutes later.
func TestShutdownCancelsInflight(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Analyze(ctx, api.AnalyzeRequest{
			Dataset: "berkeley",
			Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
			Options: api.Options{Method: "mit", Permutations: 50_000_000, Seed: 1},
		})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the permutation loop start
	srv.Close()

	select {
	case err := <-done:
		if !hasCode(err, api.CodeShuttingDown, http.StatusServiceUnavailable) {
			t.Fatalf("in-flight request returned %v, want %s", err, api.CodeShuttingDown)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight analysis did not abort after Close")
	}

	// Every request after Close is rejected outright, analysis or not.
	if _, err := c.Health(ctx); !hasCode(err, api.CodeShuttingDown, http.StatusServiceUnavailable) {
		t.Fatalf("health after Close: %v, want %s", err, api.CodeShuttingDown)
	}
}

// hasCode matches a client error against the service's code and status.
func hasCode(err error, code string, status int) bool {
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.Code == code && apiErr.Status == status
}

// TestAuditEndpoint: a lattice sweep over the uploaded Berkeley dataset
// flags Gender→Accepted, accounts for every candidate, and publishes its
// progress in the metrics.
func TestAuditEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}

	rep, err := c.Audit(ctx, api.AuditRequest{
		Dataset: "berkeley",
		Options: api.Options{Seed: 1, Permutations: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != rep.Evaluated+len(rep.Pruned) {
		t.Errorf("accountability broken: %d candidates, %d evaluated, %d pruned",
			rep.Candidates, rep.Evaluated, len(rep.Pruned))
	}
	var ga *api.AuditFinding
	for i := range rep.Findings {
		if rep.Findings[i].Treatment == "Gender" && rep.Findings[i].Outcome == "Accepted" {
			ga = &rep.Findings[i]
		}
	}
	if ga == nil {
		t.Fatalf("Gender→Accepted not flagged; findings %+v", rep.Findings)
	}
	if !ga.Reversed || ga.AdjustedDiff == nil {
		t.Errorf("Gender→Accepted should carry a reversed adjusted effect: %+v", ga)
	}
	deptResp := false
	for _, r := range ga.Responsible {
		if r.Attr == "Department" {
			deptResp = true
		}
	}
	if !deptResp {
		t.Errorf("Department not in responsible set: %+v", ga.Responsible)
	}
	if rep.Text == "" || !strings.Contains(rep.Text, "RANK") {
		t.Error("audit text panel missing")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.AuditsTotal != 1 || m.AuditsInFlight != 0 {
		t.Errorf("audit counters = total %d inflight %d, want 1/0", m.AuditsTotal, m.AuditsInFlight)
	}
	if len(m.PerDataset) != 1 {
		t.Fatalf("per-dataset metrics = %+v", m.PerDataset)
	}
	ap := m.PerDataset[0].Audit
	if ap.Audits != 1 || ap.Running != 0 {
		t.Errorf("dataset audit progress = %+v, want 1 completed", ap)
	}
	if ap.CandidatesTotal == 0 || ap.CandidatesDone != ap.CandidatesTotal {
		t.Errorf("candidate progress %d/%d, want completed and non-zero", ap.CandidatesDone, ap.CandidatesTotal)
	}
	if int(ap.CandidatesTotal) != rep.Evaluated {
		t.Errorf("metrics candidate total %d != report evaluated %d", ap.CandidatesTotal, rep.Evaluated)
	}
}

// TestAuditErrors: the audit endpoint classifies failures like the rest of
// the API.
func TestAuditErrors(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Audit(ctx, api.AuditRequest{Dataset: "nope"}); !hasCode(err, api.CodeDatasetNotFound, http.StatusNotFound) {
		t.Errorf("unknown dataset: %v", err)
	}
	if _, err := c.Audit(ctx, api.AuditRequest{
		Dataset: "berkeley", Spec: api.AuditSpec{Where: "Gender IN ("},
	}); !hasCode(err, api.CodeBadPredicate, http.StatusBadRequest) {
		t.Errorf("bad predicate: %v", err)
	}
	if _, err := c.Audit(ctx, api.AuditRequest{
		Dataset: "berkeley", Spec: api.AuditSpec{Outcomes: []string{"Missing"}},
	}); !hasCode(err, api.CodeUnknownAttribute, http.StatusUnprocessableEntity) {
		t.Errorf("unknown outcome: %v", err)
	}
	if _, err := c.Audit(ctx, api.AuditRequest{
		Dataset: "berkeley", Spec: api.AuditSpec{Where: "Gender = 'Martian'"},
	}); !hasCode(err, api.CodeEmptySelection, http.StatusUnprocessableEntity) {
		t.Errorf("empty selection: %v", err)
	}
	if _, err := c.Audit(ctx, api.AuditRequest{
		Dataset: "berkeley", Spec: api.AuditSpec{Outcomes: []string{"Gender"}},
	}); !hasCode(err, api.CodeNonNumericOutcome, http.StatusUnprocessableEntity) {
		t.Errorf("non-numeric outcome: %v", err)
	}
}

// TestAuditTimeoutReconcilesProgress: a sweep killed by the request
// timeout must not leave the metrics invariant broken — once nothing is
// running, candidates_done equals candidates_total.
func TestAuditTimeoutReconcilesProgress(t *testing.T) {
	_, c := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Audit(ctx, api.AuditRequest{
		Dataset: "berkeley",
		Options: api.Options{Method: "mit", Permutations: 50_000_000, Seed: 1},
	})
	if !hasCode(err, api.CodeTimeout, http.StatusGatewayTimeout) {
		t.Fatalf("got %v, want %s", err, api.CodeTimeout)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ap := m.PerDataset[0].Audit
	if ap.Running != 0 || ap.CandidatesDone != ap.CandidatesTotal {
		t.Errorf("failed sweep left progress unreconciled: %+v", ap)
	}
	if ap.Audits != 0 {
		t.Errorf("failed sweep counted as completed: %+v", ap)
	}
}

// TestAppendEndpoint drives the streaming-ingestion surface end to end:
// sharded registration, appends with version bumps, metrics counters, and
// the failure modes (unsharded target, ragged rows, missing dataset).
func TestAppendEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	csv := berkeleyCSV(t)

	info, err := c.CreateShardedDataset(ctx, "berkeley", csv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "sharded" || info.Shards != 4 || info.Version != 1 {
		t.Fatalf("sharded create = %+v", info)
	}
	baseRows := info.Rows

	res, err := c.Append(ctx, "berkeley", [][]string{
		{"Female", "A", "1"}, {"Male", "F", "0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 2 || res.Rows != baseRows+2 || res.Version != 2 {
		t.Fatalf("append = %+v, want 2 rows onto %d at version 2", res, baseRows)
	}

	// The registry reflects the growth: row count, partitions, version.
	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Rows != baseRows+2 || list[0].Version != 2 || list[0].Shards != 5 {
		t.Fatalf("post-append list = %+v", list)
	}

	// Analyses run against the grown dataset.
	rep, err := c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1, SkipDirect: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report after append")
	}

	// Metrics expose the append counters, service-wide and per dataset.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.AppendsTotal != 1 || m.RowsAppended != 2 {
		t.Fatalf("metrics appends = %d/%d rows, want 1/2", m.AppendsTotal, m.RowsAppended)
	}
	if len(m.PerDataset) != 1 || m.PerDataset[0].Appends != 1 || m.PerDataset[0].RowsAppended != 2 {
		t.Fatalf("per-dataset metrics = %+v", m.PerDataset)
	}

	// Ragged rows are a client error, reported before touching the backend.
	if _, err := c.Append(ctx, "berkeley", [][]string{{"F"}}); !hasCode(err, api.CodeBadRequest, http.StatusBadRequest) {
		t.Fatalf("ragged append: %v", err)
	}
	// Appends to unsharded datasets are rejected with the sentinel code.
	if _, err := c.CreateDataset(ctx, "plain", csv); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "plain", [][]string{{"Female", "A", "1"}}); !hasCode(err, api.CodeNotAppendable, http.StatusUnprocessableEntity) {
		t.Fatalf("append to mem backend: %v", err)
	}
	if _, err := c.Append(ctx, "nope", [][]string{{"Female", "A", "1"}}); !hasCode(err, api.CodeDatasetNotFound, http.StatusNotFound) {
		t.Fatalf("append to missing dataset: %v", err)
	}
}
