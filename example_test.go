package hypdb_test

import (
	"fmt"
	"log"

	"hypdb"
)

// ExampleRun executes a group-by-average query and compares the two
// treatment groups — the starting point of every HypDB analysis.
func ExampleRun() {
	b := hypdb.NewBuilder("Carrier", "Airport", "Delayed")
	rows := [][]string{
		{"AA", "COS", "0"}, {"AA", "COS", "0"}, {"AA", "COS", "1"},
		{"AA", "ROC", "1"}, {"UA", "COS", "0"},
		{"UA", "ROC", "1"}, {"UA", "ROC", "0"}, {"UA", "ROC", "1"},
	}
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			log.Fatal(err)
		}
	}
	tab, err := b.Table()
	if err != nil {
		log.Fatal(err)
	}
	ans, err := hypdb.Run(tab, hypdb.Query{
		Treatment: "Carrier",
		Outcomes:  []string{"Delayed"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ans.Rows {
		fmt.Printf("%s %.2f\n", row.Treatment, row.Avgs[0])
	}
	// Output:
	// AA 0.50
	// UA 0.50
}

// ExampleRewriteTotal removes confounding by adjusting for a covariate: the
// classic kidney-stone data where treatment A wins in every stratum yet
// loses in the aggregate.
func ExampleRewriteTotal() {
	b := hypdb.NewBuilder("T", "Size", "Success")
	add := func(t, size string, success, total int) {
		for i := 0; i < total; i++ {
			s := "0"
			if i < success {
				s = "1"
			}
			if err := b.Add(t, size, s); err != nil {
				log.Fatal(err)
			}
		}
	}
	add("A", "small", 81, 87)
	add("B", "small", 234, 270)
	add("A", "large", 192, 263)
	add("B", "large", 55, 80)
	tab, err := b.Table()
	if err != nil {
		log.Fatal(err)
	}
	q := hypdb.Query{Treatment: "T", Outcomes: []string{"Success"}}

	naive, err := hypdb.Run(tab, q)
	if err != nil {
		log.Fatal(err)
	}
	adjusted, err := hypdb.RewriteTotal(tab, q, []string{"Size"})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range naive.Rows {
		fmt.Printf("naive    %s %.3f\n", row.Treatment, row.Avgs[0])
	}
	for _, row := range adjusted.Rows {
		fmt.Printf("adjusted %s %.3f\n", row.Treatment, row.Avgs[0])
	}
	// Output:
	// naive    A 0.780
	// naive    B 0.826
	// adjusted A 0.833
	// adjusted B 0.779
}
