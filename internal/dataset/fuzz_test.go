package dataset

import (
	"errors"
	"strings"
	"testing"

	"hypdb/internal/hyperr"
)

// FuzzReadCSV: arbitrary bytes must never panic the loader, and every
// rejection must classify as hyperr.ErrMalformedCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("a,b\n1\n")
	f.Add("a,a\n1,2\n")
	f.Add("")
	f.Add("a,b\r\n\"x\",\"y\"\r\n")
	f.Add("a,\"b\n1,2\n")
	f.Add("Gender,Department,Accepted\nMale,A,1\nFemale,C,0\n")
	f.Add(",\n,\n")
	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			if !errors.Is(err, hyperr.ErrMalformedCSV) {
				t.Fatalf("ReadCSV error %v does not wrap ErrMalformedCSV", err)
			}
			return
		}
		// A loaded table must be internally consistent: equal-length columns
		// and a round-trippable shape.
		for _, name := range tab.Columns() {
			c, err := tab.Column(name)
			if err != nil {
				t.Fatalf("loaded table lost column %q: %v", name, err)
			}
			if c.Len() != tab.NumRows() {
				t.Fatalf("column %q has %d rows, table has %d", name, c.Len(), tab.NumRows())
			}
		}
		var b strings.Builder
		if err := tab.WriteCSV(&b); err != nil {
			t.Fatalf("WriteCSV of loaded table: %v", err)
		}
	})
}

// FuzzParsePredicate: arbitrary text must never panic the parser; successes
// must render to SQL and evaluate, failures must classify as
// hyperr.ErrBadPredicate.
func FuzzParsePredicate(f *testing.F) {
	f.Add("Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC')")
	f.Add("a = '1' OR b = '2' AND NOT c = '3'")
	f.Add(`"quoted attr" != 'it''s'`)
	f.Add("TRUE")
	f.Add("((((a = b))))")
	f.Add("a IN ('x')")
	f.Add("NOT NOT a <> b")
	f.Add("a = '1' AND")
	f.Add("'lone string'")
	f.Fuzz(func(t *testing.T, input string) {
		pred, err := ParsePredicate(input)
		if err != nil {
			if !errors.Is(err, hyperr.ErrBadPredicate) {
				t.Fatalf("ParsePredicate(%q) error %v does not wrap ErrBadPredicate", input, err)
			}
			return
		}
		if pred == nil {
			t.Fatalf("ParsePredicate(%q) returned nil predicate without error", input)
		}
		// A parsed predicate must render and evaluate without panicking.
		_ = pred.SQL()
		tab := MustNew(
			NewColumnFromStrings("a", []string{"1", "2"}),
			NewColumnFromStrings("b", []string{"2", "3"}),
		)
		mask, err := pred.Eval(tab)
		if err != nil {
			// Unknown attributes are legal here — the fuzzer invents names —
			// but the failure must be the classified sentinel.
			if !errors.Is(err, hyperr.ErrUnknownAttribute) {
				t.Fatalf("Eval of parsed %q: %v", input, err)
			}
			return
		}
		if len(mask) != tab.NumRows() {
			t.Fatalf("Eval of parsed %q returned %d rows, want %d", input, len(mask), tab.NumRows())
		}
	})
}
