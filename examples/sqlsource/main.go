// Example sqlsource analyzes a dataset served by a SQL database through
// the sqldb storage backend: HypDB pushes its group-by COUNT(*) queries
// down to the database instead of loading rows into memory.
//
// The database here is the in-process memsql driver (a database/sql driver
// over registered in-memory tables), so the example runs with no external
// DBMS; swap the sql.Open call for your driver of choice — "postgres",
// "mysql", ... — to run the same analysis against a real warehouse:
//
//	conn, err := sql.Open("postgres", dsn)
//	db, err := hypdb.OpenSQL(ctx, conn, "flights")
//
// Run with:
//
//	go run ./examples/sqlsource
package main

import (
	"context"
	"fmt"
	"log"

	"hypdb"
	"hypdb/internal/datagen"
	"hypdb/internal/memsql"
)

func main() {
	ctx := context.Background()

	// Stand-in for a real database: generate the paper's FlightData and
	// serve it through the in-process SQL driver.
	tab, err := datagen.Flight(12000, 1)
	if err != nil {
		log.Fatal(err)
	}
	memsql.Register("flights", tab)
	conn, err := memsql.Open("")
	if err != nil {
		log.Fatal(err)
	}

	// OpenSQL probes the schema and takes ownership of conn: Close
	// releases it.
	db, err := hypdb.OpenSQL(ctx, conn, "flights")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	attrs, err := db.Attributes(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema discovered from the database:")
	for _, a := range attrs {
		fmt.Printf("  %-12s %4d distinct\n", a.Name, a.Distinct)
	}

	// The Fig 1 query: is AA really better than UA? Every statistic below
	// — covariate discovery, bias detection, explanation ranking, and the
	// rewritten answers — is computed from COUNT(*) aggregates pushed to
	// the database.
	q := datagen.FlightQuery()
	report, err := db.Analyze(ctx, q, hypdb.WithSeed(1), hypdb.WithPermutations(200), hypdb.WithParallel(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
}
