package api

import (
	"errors"
	"testing"

	"hypdb"
)

func TestQueryToQuery(t *testing.T) {
	q, err := Query{
		Treatment: "Carrier",
		Outcomes:  []string{"Delayed"},
		Where:     "Carrier IN ('AA','UA')",
	}.ToQuery("flights")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "flights" || q.Treatment != "Carrier" || q.Where == nil {
		t.Errorf("converted query = %+v", q)
	}
	if got := q.Where.SQL(); got != "Carrier IN ('AA','UA')" {
		t.Errorf("where round trip = %q", got)
	}

	_, err = Query{Treatment: "T", Outcomes: []string{"Y"}, Where: "T ="}.ToQuery("d")
	if !errors.Is(err, hypdb.ErrBadPredicate) {
		t.Errorf("bad where error = %v, want ErrBadPredicate", err)
	}
}

func TestOptionsToOptions(t *testing.T) {
	for _, m := range []string{"", "hymit", "chi2", "mit", "mit-sampling"} {
		if _, err := (Options{Method: m}).ToOptions(); err != nil {
			t.Errorf("method %q rejected: %v", m, err)
		}
	}
	if _, err := (Options{Method: "magic"}).ToOptions(); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestErrorFormat(t *testing.T) {
	e := &Error{Status: 404, Code: CodeDatasetNotFound, Message: `no dataset "x"`}
	want := `hypdbd: no dataset "x" (dataset_not_found, HTTP 404)`
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
}

func TestAuditSpecToSpec(t *testing.T) {
	spec, err := AuditSpec{
		Treatments: []string{"Gender"},
		Outcomes:   []string{"Accepted"},
		Where:      "Department IN ('A','C')",
		MinSupport: 10,
		TopK:       3,
	}.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Where == nil || spec.MinSupport != 10 || spec.TopK != 3 {
		t.Errorf("spec = %+v", spec)
	}
	if _, err := (AuditSpec{Where: "Gender IN ("}).ToSpec(); err == nil {
		t.Error("bad predicate accepted")
	}
}

func TestAuditReportFromCore(t *testing.T) {
	r := &hypdb.AuditReport{
		Treatments: []string{"T"}, Outcomes: []string{"Y"},
		Candidates: 2, Evaluated: 1, TotalFindings: 1,
		Findings: []hypdb.AuditFinding{{
			Treatment: "T", Outcome: "Y", T0: "a", T1: "b",
			OriginalDiff: 0.2, AdjustedDiff: -0.1, HasAdjusted: true,
			AdjustedKind: "total", Reversed: true, Score: 0.3,
		}},
		Pruned: []hypdb.AuditPruned{{Treatment: "R", Outcome: "Y", Reason: "low support", Support: 3}},
	}
	w := AuditReportFromCore(r)
	if w.Candidates != 2 || len(w.Findings) != 1 || len(w.Pruned) != 1 {
		t.Fatalf("wire report = %+v", w)
	}
	f := w.Findings[0]
	if f.AdjustedDiff == nil || *f.AdjustedDiff != -0.1 || !f.Reversed {
		t.Errorf("finding = %+v", f)
	}
	// A finding without an adjusted estimate must omit the field, not
	// encode a zero.
	r.Findings[0].HasAdjusted = false
	if w2 := AuditReportFromCore(r); w2.Findings[0].AdjustedDiff != nil {
		t.Error("absent adjusted estimate encoded as a value")
	}
	if AuditReportFromCore(nil) != nil {
		t.Error("nil report should convert to nil")
	}
}
