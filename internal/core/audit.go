package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/internal/independence"
	"hypdb/internal/query"
	"hypdb/source"
)

// Audit default thresholds; AuditSpec fields of zero fall back to these.
const (
	// DefaultMinSupport is the minimum number of rows each compared
	// treatment group must have before a candidate query is analyzed.
	DefaultMinSupport = 50
	// DefaultMaxTreatmentCard is the widest active domain an attribute may
	// have and still be swept as a treatment (wider attributes are almost
	// never the axis an analyst compares along, and each extra value
	// dilutes the per-group support).
	DefaultMaxTreatmentCard = 10
	// DefaultMaxOutcomeCard is the widest active domain an attribute may
	// have and still be swept as an outcome.
	DefaultMaxOutcomeCard = 24
)

// AuditSpec configures a lattice-wide bias sweep: which attributes may play
// the treatment and outcome roles, the population restriction, and the
// support/cardinality filters that prune the candidate space before any
// statistical testing runs.
type AuditSpec struct {
	// Treatments restricts the treatment-role candidates; empty sweeps
	// every attribute passing the cardinality filter.
	Treatments []string
	// Outcomes restricts the outcome-role candidates; empty sweeps every
	// numeric attribute passing the cardinality filter.
	Outcomes []string
	// Where restricts the audited population; nil audits everything.
	Where dataset.Predicate
	// MinSupport is the minimum row count of each compared treatment
	// group; candidates below it are pruned (and reported as pruned)
	// before any permutation test runs. Zero means DefaultMinSupport.
	MinSupport int
	// MaxTreatmentCard / MaxOutcomeCard bound the active-domain size of
	// treatment and outcome candidates; zero means the package defaults.
	MaxTreatmentCard int
	MaxOutcomeCard   int
	// TopK caps the ranked findings list; zero keeps every biased query.
	TopK int
	// Workers bounds the sweep's worker pool; zero means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives (done, total) after each candidate
	// completes, plus one initial (0, total) call. Calls are serialized.
	Progress func(done, total int)
}

func (s AuditSpec) minSupport() int {
	if s.MinSupport > 0 {
		return s.MinSupport
	}
	return DefaultMinSupport
}

func (s AuditSpec) maxTreatmentCard() int {
	if s.MaxTreatmentCard > 0 {
		return s.MaxTreatmentCard
	}
	return DefaultMaxTreatmentCard
}

func (s AuditSpec) maxOutcomeCard() int {
	if s.MaxOutcomeCard > 0 {
		return s.MaxOutcomeCard
	}
	return DefaultMaxOutcomeCard
}

func (s AuditSpec) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AuditExcluded records an attribute that was kept out of a sweep role,
// with the reason — the audit never drops anything silently.
type AuditExcluded struct {
	// Attr is the attribute; Role is "treatment" or "outcome".
	Attr string
	Role string
	// Reason is a human-readable explanation (cardinality bound,
	// non-numeric labels, constant column, ...).
	Reason string
}

// AuditPruned records a candidate (treatment, outcome) query excluded from
// evaluation by the support filter.
type AuditPruned struct {
	Treatment string
	Outcome   string
	// Reason explains the pruning; Support is the smaller compared-group
	// row count that fell below the threshold.
	Reason  string
	Support int
}

// AuditUnbiased records an evaluated candidate whose balance test did not
// reject independence (or that had no discovered covariates to test).
type AuditUnbiased struct {
	Treatment string
	Outcome   string
	// PValue is the balance-test p-value (1 when no covariates were
	// discovered, making the test trivial).
	PValue float64
	// Note explains trivial verdicts, e.g. "no covariates discovered".
	Note string `json:",omitempty"`
}

// AuditFinding is one biased candidate query of an audit sweep, with the
// evidence an analyst needs to triage it: the balance-test significance,
// the naive versus adjusted effect, and the responsible covariates.
type AuditFinding struct {
	// Treatment and Outcome name the audited pair; T0 and T1 are the two
	// compared treatment values (T0 < T1; diffs are avg(T1) − avg(T0)).
	Treatment string
	Outcome   string
	T0, T1    string
	// Query is the concrete OLAP query audited (including the sweep's
	// WHERE restriction and, for treatments wider than two values, the
	// IN restriction to the two best-supported values); SQL is its
	// Listing 1 rendering.
	Query query.Query
	SQL   string
	// Support is the row count of the smaller compared treatment group.
	Support int
	// Covariates is the discovered adjustment set Z (the treatment's
	// parents, minus the audited outcome) and Mediators the outcome's
	// parents reached through the treatment (M); CDTests counts the
	// independence tests the treatment's discovery spent (shared across
	// the treatment's candidates).
	Covariates []string
	Mediators  []string
	CDTests    int
	// MI and PValue report the strongest rejecting balance test — over Z
	// (total effect) or Z ∪ M (direct effect): the bias verdict's
	// strength and significance.
	MI       float64
	PValue   float64
	PValueCI float64
	// OriginalDiff is the naive avg(T1) − avg(T0); AdjustedDiff is the
	// same difference after the bias-removing rewriting — the
	// total-effect adjustment over Z when covariates were discovered,
	// otherwise the natural-direct-effect estimate over M (AdjustedKind
	// says which). Valid only when HasAdjusted: exact matching can fail
	// when no block contains both treatment values.
	OriginalDiff float64
	AdjustedDiff float64
	AdjustedKind string
	HasAdjusted  bool
	// Reversed reports an effect reversal: adjusting flipped the sign of
	// the compared difference (the Simpson's-paradox signature).
	Reversed bool
	// Score is the ranking key: the effect distortion
	// |OriginalDiff − AdjustedDiff| when the rewriting succeeded,
	// |OriginalDiff| otherwise. Findings sort by (Reversed, Score,
	// PValue) with name tie-breaks, so reports are deterministic.
	Score float64
	// Responsible ranks the covariates by their share of the bias
	// (coarse explanation, Def 3.3).
	Responsible []Responsibility
	// Note carries non-fatal per-candidate diagnostics (e.g. why the
	// rewriting was impossible).
	Note string `json:",omitempty"`
}

// AuditReport is the result of a lattice-wide bias sweep. Accountability
// invariant: Candidates == Evaluated + len(Pruned), and
// Evaluated == len(Findings) + len(Unbiased) (before TopK capping) — every
// enumerated candidate is either evaluated or listed as pruned with a
// reason; nothing is dropped silently.
type AuditReport struct {
	// Treatments and Outcomes are the attributes that passed the role
	// filters; Excluded lists the ones that did not, with reasons.
	Treatments []string
	Outcomes   []string
	Excluded   []AuditExcluded
	// Candidates counts the enumerated (treatment, outcome) pairs;
	// Evaluated counts the pairs that survived support pruning and were
	// analyzed.
	Candidates int
	Evaluated  int
	// Findings are the biased candidate queries, ranked by effect-reversal
	// strength and significance (capped at TopK when set; TotalFindings
	// preserves the uncapped count).
	Findings      []AuditFinding
	TotalFindings int
	// Unbiased lists the evaluated candidates that passed the balance
	// test; Pruned lists the candidates excluded by the support filter.
	Unbiased []AuditUnbiased
	Pruned   []AuditPruned
	// Elapsed is the sweep's wall-clock time.
	Elapsed time.Duration
	// Degraded is true when the sweep read counts with at least one remote
	// shard missing (degraded reads over a remote-sharded relation): every
	// count, test and ranking may rest on partial data and the report must
	// be treated as stale. Set by the facade, which watches the storage
	// layer's degraded-serve counter across the sweep.
	Degraded bool
}

// auditGroup is the unit of sweep work: one treatment attribute, the two
// compared values, the candidate-level restriction (for treatments wider
// than two values) and the outcomes to pair it with. Grouping by treatment
// is what lets one covariate discovery — and one countcache closure prime —
// serve every candidate of the group.
type auditGroup struct {
	treatment string
	t0, t1    string
	restrict  dataset.Predicate // non-nil iff card(treatment) > 2
	// reportWhere is the full restriction a finding's query carries (the
	// sweep's WHERE conjoined with restrict), so reported queries re-run
	// against the root relation.
	reportWhere dataset.Predicate
	support     int
	outcomes    []string
}

// auditResult collects one group's per-candidate outcomes in outcome order.
type auditResult struct {
	findings []AuditFinding
	unbiased []AuditUnbiased
}

// Audit sweeps the (treatment, outcome) query lattice of a relation: it
// enumerates every ordered attribute pair passing the spec's role,
// cardinality and support filters, runs bias detection on each surviving
// candidate over a bounded worker pool, and returns the biased queries
// ranked by effect-reversal strength and significance, with responsible
// covariates and coarse explanations attached.
//
// The sweep shares work instead of brute-forcing: candidates are grouped by
// treatment, so covariate discovery — whose attribute closure is the whole
// schema and therefore identical for every group — primes the session count
// cache once for the entire sweep, and each group's CD result, balance
// test and explanation counts are reused across all of its outcomes.
// Support pruning runs before any statistical test, so no permutation loop
// is ever spent on a candidate that would be discarded. Cancelling ctx
// aborts the sweep promptly, mid-candidate.
func Audit(ctx context.Context, rel source.Relation, spec AuditSpec, opts Options) (*AuditReport, error) {
	start := time.Now()
	view := rel
	if spec.Where != nil {
		v, err := rel.Restrict(ctx, spec.Where)
		if err != nil {
			return nil, err
		}
		view = v
	}
	n, err := view.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("core: audit WHERE clause selects no rows: %w", hyperr.ErrEmptySelection)
	}

	rep := &AuditReport{}
	if err := auditRoles(ctx, view, spec, rep); err != nil {
		return nil, err
	}

	// Every group's covariate discovery closes over the full schema, so the
	// whole sweep shares one closure: prime the count cache with the finest
	// group-by up front (one backend round trip) and everything after it —
	// the support counts of candidate enumeration, each candidate's
	// preparation screen, discovery, balance test, explanation and
	// rewriting — marginalizes it client-side. Closures over the cell
	// budget are skipped inside Prime and requests fall through per-subset.
	if p, ok := view.(interface {
		Prime(ctx context.Context, attrs []string, budget int) error
	}); ok && !opts.SkipPrime && len(rep.Treatments) > 0 && len(rep.Outcomes) > 0 {
		if err := p.Prime(ctx, view.Attributes(), opts.CellBudget); err != nil {
			return nil, err
		}
	}

	groups, err := auditEnumerate(ctx, view, spec, rep)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, g := range groups {
		total += len(g.outcomes)
	}
	rep.Evaluated = total

	progress := newAuditProgress(spec.Progress, total)
	progress.emit(0)

	results := make([]auditResult, len(groups))
	medCache := &mediatorCache{entries: make(map[string]*mediatorEntry)}
	err = RunPool(ctx, len(groups), spec.workers(), func(gctx context.Context, i int) error {
		res, err := opts.auditOne(gctx, view, groups[i], rep.Outcomes, medCache, progress)
		if err != nil {
			return fmt.Errorf("core: audit %s: %w", groups[i].treatment, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, r := range results {
		rep.Findings = append(rep.Findings, r.findings...)
		rep.Unbiased = append(rep.Unbiased, r.unbiased...)
	}
	rankFindings(rep.Findings)
	rep.TotalFindings = len(rep.Findings)
	if spec.TopK > 0 && len(rep.Findings) > spec.TopK {
		rep.Findings = rep.Findings[:spec.TopK]
	}
	sort.Slice(rep.Unbiased, func(i, j int) bool {
		if rep.Unbiased[i].Treatment != rep.Unbiased[j].Treatment {
			return rep.Unbiased[i].Treatment < rep.Unbiased[j].Treatment
		}
		return rep.Unbiased[i].Outcome < rep.Unbiased[j].Outcome
	})
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// auditRoles resolves the treatment- and outcome-eligible attribute sets,
// recording every exclusion with its reason.
func auditRoles(ctx context.Context, view source.Relation, spec AuditSpec, rep *AuditReport) error {
	exclude := func(attr, role, reason string) {
		rep.Excluded = append(rep.Excluded, AuditExcluded{Attr: attr, Role: role, Reason: reason})
	}
	resolve := func(requested []string, role string) ([]string, error) {
		attrs := requested
		explicit := len(requested) > 0
		if !explicit {
			attrs = view.Attributes()
		}
		var out []string
		seen := make(map[string]bool, len(attrs))
		for _, a := range attrs {
			if seen[a] {
				continue // duplicate names must not double-count candidates
			}
			seen[a] = true
			if !view.HasAttribute(a) {
				return nil, fmt.Errorf("core: audit %s candidate %q: %w", role, a, hyperr.ErrUnknownAttribute)
			}
			card, err := source.Card(ctx, view, a)
			if err != nil {
				return nil, err
			}
			if card < 2 {
				exclude(a, role, "constant in the audited population")
				continue
			}
			switch role {
			case "treatment":
				if !explicit && card > spec.maxTreatmentCard() {
					exclude(a, role, fmt.Sprintf("cardinality %d exceeds the treatment bound %d", card, spec.maxTreatmentCard()))
					continue
				}
			case "outcome":
				if !explicit && card > spec.maxOutcomeCard() {
					exclude(a, role, fmt.Sprintf("cardinality %d exceeds the outcome bound %d", card, spec.maxOutcomeCard()))
					continue
				}
				if _, err := query.FloatDict(ctx, view, a); err != nil {
					if explicit {
						return nil, fmt.Errorf("core: audit outcome %q: %w", a, err)
					}
					exclude(a, role, "non-numeric values cannot be averaged")
					continue
				}
			}
			out = append(out, a)
		}
		sort.Strings(out)
		return out, nil
	}
	var err error
	if rep.Treatments, err = resolve(spec.Treatments, "treatment"); err != nil {
		return err
	}
	rep.Outcomes, err = resolve(spec.Outcomes, "outcome")
	return err
}

// auditEnumerate builds the per-treatment work groups: it counts the
// treatment's groups once (served by the count cache), picks the two
// best-supported values, applies the support filter, and pairs the
// treatment with every eligible outcome. Pruned candidates are recorded on
// the report.
func auditEnumerate(ctx context.Context, view source.Relation, spec AuditSpec, rep *AuditReport) ([]auditGroup, error) {
	var groups []auditGroup
	for _, t := range rep.Treatments {
		outcomes := make([]string, 0, len(rep.Outcomes))
		for _, y := range rep.Outcomes {
			if y != t {
				outcomes = append(outcomes, y)
			}
		}
		if len(outcomes) == 0 {
			continue
		}
		rep.Candidates += len(outcomes)

		t0, t1, support, card, err := topTwoValues(ctx, view, t)
		if err != nil {
			return nil, err
		}
		if support < spec.minSupport() {
			for _, y := range outcomes {
				rep.Pruned = append(rep.Pruned, AuditPruned{
					Treatment: t, Outcome: y,
					Reason:  fmt.Sprintf("group support %d below the minimum %d", support, spec.minSupport()),
					Support: support,
				})
			}
			continue
		}
		g := auditGroup{treatment: t, t0: t0, t1: t1, support: support, outcomes: outcomes}
		if card > 2 {
			g.restrict = dataset.In{Attr: t, Values: []string{t0, t1}}
		}
		g.reportWhere = combineWhere(spec.Where, g.restrict)
		groups = append(groups, g)
	}
	return groups, nil
}

// topTwoValues returns the treatment's two best-supported values in
// lexicographic order, the smaller group's row count, and the active-domain
// size. Ties between counts break on the label, keeping sweeps
// deterministic.
func topTwoValues(ctx context.Context, view source.Relation, t string) (t0, t1 string, support, card int, err error) {
	counts, err := view.Counts(ctx, []string{t}, nil)
	if err != nil {
		return "", "", 0, 0, err
	}
	labels, err := view.Labels(ctx, t)
	if err != nil {
		return "", "", 0, 0, err
	}
	type vc struct {
		label string
		n     int
	}
	vals := make([]vc, 0, len(counts))
	for k, n := range counts {
		if n > 0 {
			vals = append(vals, vc{label: labels[k.Field(0)], n: n})
		}
	}
	if len(vals) < 2 {
		return "", "", 0, len(vals), nil
	}
	sort.Slice(vals, func(i, j int) bool {
		if vals[i].n != vals[j].n {
			return vals[i].n > vals[j].n
		}
		return vals[i].label < vals[j].label
	})
	t0, t1 = vals[0].label, vals[1].label
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	return t0, t1, vals[1].n, len(vals), nil
}

// auditOne evaluates one treatment group: a single covariate discovery for
// the treatment (routed through opts.Discover, so session handles also
// share it with Analyze traffic), the sweep-shared per-outcome mediator
// discoveries, then one balance test, effect comparison and coarse
// explanation per distinct variable set, all served from the primed count
// cache.
func (o Options) auditOne(ctx context.Context, view source.Relation, g auditGroup, auditOutcomes []string, medCache *mediatorCache, progress *auditProgress) (auditResult, error) {
	var res auditResult
	gview := view
	if g.restrict != nil {
		v, err := view.Restrict(ctx, g.restrict)
		if err != nil {
			return res, err
		}
		gview = v
	}

	// Covariate discovery for the treatment, shared by every candidate in
	// the group. Candidates are every attribute surviving the logical-
	// dependency screen, plus the audit's outcome set — mirroring Analyze's
	// construction with the full outcome-role set, so the fallback
	// covariates exclude every attribute the sweep may audit as an outcome.
	candidates := make([]string, 0, len(view.Attributes()))
	for _, a := range view.Attributes() {
		if a != g.treatment && !containsStr(auditOutcomes, a) {
			candidates = append(candidates, a)
		}
	}
	kept, _, err := PrepareCandidates(ctx, view, g.treatment, candidates, o.Prepare)
	if err != nil {
		return res, err
	}
	cdCands := append(append([]string(nil), kept...), auditOutcomes...)
	cd, err := o.discover(ctx, view, g.treatment, cdCands, auditOutcomes, o.Config)
	if err != nil {
		return res, err
	}

	// Balance tests and explanations depend only on (treatment, variable
	// set), so candidates resolving to the same adjustment sets — the
	// common case — share one test and one explanation.
	type balance struct {
		res independence.Result
		err error
	}
	balances := make(map[string]*balance)
	testBalance := func(vars []string) (independence.Result, error) {
		key := strings.Join(vars, "\x00")
		b, ok := balances[key]
		if !ok {
			b = &balance{}
			b.res, b.err = o.TestBalance(ctx, gview, g.treatment, vars, nil)
			balances[key] = b
		}
		return b.res, b.err
	}
	type explanation struct {
		resp []Responsibility
		err  error
	}
	explains := make(map[string]*explanation)
	explain := func(vars []string) ([]Responsibility, error) {
		key := strings.Join(vars, "\x00")
		e, ok := explains[key]
		if !ok {
			e = &explanation{}
			e.resp, e.err = ExplainCoarse(ctx, gview, g.treatment, vars, o.Config)
			explains[key] = e
		}
		return e.resp, e.err
	}

	for _, y := range g.outcomes {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		covs := excludeStr(cd.Parents, y)
		var meds []string
		if !o.SkipDirect {
			// Mediators of the pair: the outcome's parents (discovered once
			// per outcome for the whole sweep), minus the treatment and its
			// covariates — Analyze's construction.
			parents, err := medCache.parents(ctx, o, view, y)
			if err != nil {
				return res, err
			}
			for _, p := range parents {
				if p != g.treatment && !containsStr(covs, p) {
					meds = append(meds, p)
				}
			}
			sort.Strings(meds)
		}
		if len(covs) == 0 && len(meds) == 0 {
			res.unbiased = append(res.unbiased, AuditUnbiased{
				Treatment: g.treatment, Outcome: y, PValue: 1,
				Note: "no covariates or mediators discovered",
			})
			progress.emit(1)
			continue
		}

		// The balance verdict mirrors Analyze: unbalanced w.r.t. Z (total
		// effect) or w.r.t. Z ∪ M (direct effect) means biased; the
		// strongest rejecting test supplies the reported significance.
		var primary independence.Result
		primary.PValue = 1
		biased := false
		if len(covs) > 0 {
			r, err := testBalance(covs)
			if err != nil {
				return res, err
			}
			if !independence.Decision(r, o.alpha()) {
				biased = true
			}
			primary = r
		}
		variables := unionAttrs(covs, meds, nil)
		if len(meds) > 0 {
			r, err := testBalance(variables)
			if err != nil {
				return res, err
			}
			if !independence.Decision(r, o.alpha()) {
				biased = true
			}
			if len(covs) == 0 || r.PValue < primary.PValue {
				primary = r
			}
		}
		if !biased {
			res.unbiased = append(res.unbiased, AuditUnbiased{
				Treatment: g.treatment, Outcome: y, PValue: primary.PValue,
			})
			progress.emit(1)
			continue
		}
		resp, err := explain(variables)
		if err != nil {
			return res, err
		}
		f, err := o.auditFinding(ctx, gview, g, y, covs, meds, cd, primary, resp)
		if err != nil {
			return res, err
		}
		res.findings = append(res.findings, f)
		progress.emit(1)
	}
	return res, nil
}

// mediatorCache single-flights the per-outcome parent discoveries of one
// sweep: the discovery's inputs (target outcome, prepared full-schema
// candidates) are treatment-independent, so every treatment group shares
// one computation per outcome — with or without a session memoizer behind
// opts.Discover.
type mediatorCache struct {
	mu      sync.Mutex
	entries map[string]*mediatorEntry
}

// mediatorEntry is one outcome's slot: the first caller computes, others
// wait on done.
type mediatorEntry struct {
	done    chan struct{}
	parents []string
	err     error
}

// parents returns the outcome's discovered parent set, computing it at
// most once per sweep.
func (c *mediatorCache) parents(ctx context.Context, o Options, view source.Relation, y string) ([]string, error) {
	c.mu.Lock()
	e, ok := c.entries[y]
	if !ok {
		e = &mediatorEntry{done: make(chan struct{})}
		c.entries[y] = e
		c.mu.Unlock()
		e.parents, e.err = o.outcomeParents(ctx, view, y)
		close(e.done)
		return e.parents, e.err
	}
	c.mu.Unlock()
	select {
	case <-e.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return e.parents, e.err
}

// outcomeParents discovers one outcome's parents over the prepared full
// schema — the raw material of mediator sets; per-pair filtering (drop the
// treatment and its covariates) happens at the candidate.
func (o Options) outcomeParents(ctx context.Context, view source.Relation, y string) ([]string, error) {
	candidates := make([]string, 0, len(view.Attributes()))
	for _, a := range view.Attributes() {
		if a != y {
			candidates = append(candidates, a)
		}
	}
	kept, _, err := PrepareCandidates(ctx, view, y, candidates, o.Prepare)
	if err != nil {
		return nil, err
	}
	cdY, err := o.discover(ctx, view, y, kept, nil, o.Config)
	if err != nil {
		return nil, err
	}
	return cdY.Parents, nil
}

// auditFinding assembles one biased candidate's evidence: the naive and
// adjusted effects plus the ranking score.
func (o Options) auditFinding(ctx context.Context, gview source.Relation, g auditGroup, y string, covs, meds []string, cd *CDResult, bres independence.Result, resp []Responsibility) (AuditFinding, error) {
	q := query.Query{
		Table:     gview.Name(),
		Treatment: g.treatment,
		Outcomes:  []string{y},
	}
	f := AuditFinding{
		Treatment: g.treatment, Outcome: y,
		T0: g.t0, T1: g.t1,
		Support:    g.support,
		Covariates: covs,
		Mediators:  meds,
		CDTests:    cd.Tests,
		MI:         bres.MI,
		PValue:     bres.PValue,
		PValueCI:   bres.PValueCI,
	}

	ans, err := query.Run(ctx, gview, q)
	if err != nil {
		return f, err
	}
	comps, err := ans.CompareValues(g.t0, g.t1)
	if err != nil {
		return f, err
	}
	if len(comps) == 1 {
		f.OriginalDiff = comps[0].Diffs[0]
	}

	// The adjusted effect: the total-effect rewriting over Z when
	// covariates exist, else the natural-direct-effect estimate over M
	// (the Berkeley shape, where the confounder-free path is mediated).
	var rw *query.Rewritten
	if len(covs) > 0 {
		rw, err = query.RewriteTotal(ctx, gview, q, covs)
		f.AdjustedKind = "total"
	} else {
		rw, err = query.RewriteDirect(ctx, gview, q, covs, meds, o.Baseline)
		f.AdjustedKind = "direct"
	}
	switch {
	case err == nil:
		rcomps, cerr := rw.Compare()
		switch {
		case cerr == nil && len(rcomps) == 1:
			f.AdjustedDiff = rcomps[0].Diffs[0]
			f.HasAdjusted = true
		case cerr != nil:
			// E.g. the rewriting dropped every block containing one
			// treatment value: no adjusted estimate, but never silently.
			f.Note = f.AdjustedKind + "-effect comparison unavailable: " + cerr.Error()
		}
	case errors.Is(err, hyperr.ErrNoOverlap):
		f.Note = f.AdjustedKind + "-effect rewriting impossible: " + err.Error()
	default:
		return f, err
	}
	if !f.HasAdjusted {
		f.AdjustedKind = ""
	}

	f.Reversed = f.HasAdjusted && f.OriginalDiff*f.AdjustedDiff < 0
	if f.HasAdjusted {
		f.Score = abs(f.OriginalDiff - f.AdjustedDiff)
	} else {
		f.Score = abs(f.OriginalDiff)
	}
	f.Responsible = resp

	// The report's query carries the sweep's WHERE plus the candidate's own
	// restriction, so it is self-contained and re-runnable against the root
	// relation.
	f.Query = q
	f.Query.Where = g.reportWhere
	f.SQL = f.Query.SQL()
	return f, nil
}

// combineWhere conjoins two optional predicates.
func combineWhere(a, b dataset.Predicate) dataset.Predicate {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return dataset.And{a, b}
	}
}

// rankFindings orders biased queries by effect-reversal strength and
// significance: reversals first, then the score (the adjustment's effect
// distortion), then the balance p-value, with name tie-breaks for
// deterministic reports.
func rankFindings(fs []AuditFinding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Reversed != b.Reversed {
			return a.Reversed
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.PValue != b.PValue {
			return a.PValue < b.PValue
		}
		if a.Treatment != b.Treatment {
			return a.Treatment < b.Treatment
		}
		return a.Outcome < b.Outcome
	})
}

// auditProgress serializes the sweep's progress callbacks.
type auditProgress struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int)
}

func newAuditProgress(fn func(done, total int), total int) *auditProgress {
	return &auditProgress{fn: fn, total: total}
}

// emit advances the done counter by delta and invokes the callback. The
// callback runs under the progress lock — that is what makes the
// "calls are serialized, done is monotonic" contract hold for concurrent
// sweep workers — so it must not block indefinitely or re-enter the sweep.
func (p *auditProgress) emit(delta int) {
	if p == nil || p.fn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done += delta
	p.fn(p.done, p.total)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// WriteText renders the audit as a ranked table plus the accountability
// sections (unbiased, pruned, excluded) — the `hypdb audit` CLI output.
func (r *AuditReport) WriteText(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	p("Audited %d candidate queries over %d treatments × %d outcomes (%d evaluated, %d pruned) in %s.\n",
		r.Candidates, len(r.Treatments), len(r.Outcomes), r.Evaluated, len(r.Pruned), r.Elapsed.Round(time.Millisecond))
	if r.Degraded {
		p("STALE: at least one remote shard was unreachable during the sweep; all statistics rest on partial counts.\n")
	}
	if len(r.Findings) == 0 {
		p("No biased queries found.\n")
	} else {
		p("%d biased quer%s", r.TotalFindings, plural(r.TotalFindings, "y", "ies"))
		if len(r.Findings) < r.TotalFindings {
			p(" (top %d shown)", len(r.Findings))
		}
		p(":\n\n")
		p("%-4s %-28s %-13s %9s %9s %-8s %-9s %s\n",
			"RANK", "QUERY", "VALUES", "Δ ORIG", "Δ ADJ", "REVERSED", "P(BIAS)", "COVARIATES (ρ)")
		for i, f := range r.Findings {
			adj := "n/a"
			if f.HasAdjusted {
				adj = fmt.Sprintf("%+.4f", f.AdjustedDiff)
			}
			rev := "no"
			if f.Reversed {
				rev = "YES"
			}
			p("%-4d %-28s %-13s %+9.4f %9s %-8s %-9.4f %s\n",
				i+1,
				fmt.Sprintf("avg(%s) by %s", f.Outcome, f.Treatment),
				f.T0+"→"+f.T1,
				f.OriginalDiff, adj, rev, f.PValue,
				fmtResponsible(f.Responsible))
			if f.Note != "" {
				p("     note: %s\n", f.Note)
			}
		}
	}
	if len(r.Unbiased) > 0 {
		p("\nUnbiased (%d):", len(r.Unbiased))
		for _, u := range r.Unbiased {
			p(" %s→%s", u.Treatment, u.Outcome)
		}
		p("\n")
	}
	if len(r.Pruned) > 0 {
		p("\nPruned (%d):\n", len(r.Pruned))
		for _, pr := range r.Pruned {
			p("  %s→%s — %s\n", pr.Treatment, pr.Outcome, pr.Reason)
		}
	}
	if len(r.Excluded) > 0 {
		p("\nExcluded attributes:\n")
		for _, e := range r.Excluded {
			p("  %s (%s) — %s\n", e.Attr, e.Role, e.Reason)
		}
	}
	return nil
}

// String renders the report as WriteText does.
func (r *AuditReport) String() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

func fmtResponsible(resp []Responsibility) string {
	if len(resp) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(resp))
	for _, x := range resp {
		parts = append(parts, fmt.Sprintf("%s (%.2f)", x.Attr, x.Rho))
	}
	return strings.Join(parts, ", ")
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
