package hypdb_test

// Paper-fidelity regression suite: runs the seeded Berkeley, Staples and
// Flight generators end-to-end through Analyze and pins the qualitative
// conclusions of the paper's Table 1 / Figs 1, 3, 4 and 5 — bias detected,
// top-ranked explanations, and the direction of the rewritten answers —
// against golden files in testdata/paperrepro. Regenerate with
//
//	go test -run TestPaperRepro -update
//
// after an intentional change, and review the golden diff like code: it is
// the qualitative contract of the reproduction.

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hypdb"
	"hypdb/internal/datagen"
)

var update = flag.Bool("update", false, "rewrite testdata/paperrepro golden files")

// effectSummary is one comparison's qualitative digest. Floats are rounded
// to 4 decimals so golden comparisons are robust to last-ulp drift.
type effectSummary struct {
	T0          string  `json:"t0"`
	T1          string  `json:"t1"`
	Diff        float64 `json:"diff"`
	PValue      float64 `json:"p_value"`
	Significant bool    `json:"significant"` // p < 0.01
	// MC marks a Monte-Carlo p-value (MIT branch): its exact value — and,
	// under group sampling, even the verdict — depends on the sampled
	// group subset, which is backend-dependent. Excluded from golden files
	// and used by the backend-equivalence suite to scope strict
	// comparisons to deterministic (χ²-branch) effects.
	MC bool `json:"-"`
}

type explSummary struct {
	Attr string  `json:"attr"`
	Rho  float64 `json:"rho"`
}

// reproSummary is the golden-file shape of one end-to-end run.
type reproSummary struct {
	Dataset         string         `json:"dataset"`
	Rows            int            `json:"rows"`
	SQL             string         `json:"sql"`
	Biased          bool           `json:"biased"`
	UsedFallback    bool           `json:"used_fallback"`
	Covariates      []string       `json:"covariates"`
	Mediators       []string       `json:"mediators"`
	Explanations    []explSummary  `json:"explanations"`
	Original        *effectSummary `json:"original"`
	RewrittenTotal  *effectSummary `json:"rewritten_total,omitempty"`
	RewrittenDirect *effectSummary `json:"rewritten_direct,omitempty"`
}

func round4(x float64) float64 { return math.Round(x*1e4) / 1e4 }

func effectOf(comps []hypdb.ComparisonReport) *effectSummary {
	if len(comps) == 0 {
		return nil
	}
	c := comps[0]
	mc := false
	if len(c.Methods) > 0 {
		// Everything except the parametric χ² branches is Monte-Carlo.
		mc = c.Methods[0] != "chi2" && c.Methods[0] != "hymit(chi2)"
	}
	return &effectSummary{
		T0: c.T0, T1: c.T1,
		Diff:        round4(c.Diffs[0]),
		PValue:      round4(c.PValues[0]),
		Significant: c.PValues[0] < 0.01,
		MC:          mc,
	}
}

// analyzeSummary runs the pipeline over the in-memory backend and digests
// the report.
func analyzeSummary(t *testing.T, name string, tab *hypdb.Table, q hypdb.Query, opts ...hypdb.Option) *reproSummary {
	t.Helper()
	return analyzeSummaryOn(t, name, hypdb.Open(tab), tab.NumRows(), q, opts...)
}

// analyzeSummaryOn runs the pipeline on an existing session handle — any
// storage backend — and digests the report.
func analyzeSummaryOn(t *testing.T, name string, db *hypdb.DB, rows int, q hypdb.Query, opts ...hypdb.Option) *reproSummary {
	t.Helper()
	rep, err := db.Analyze(context.Background(), q, opts...)
	if err != nil {
		t.Fatalf("%s: Analyze: %v", name, err)
	}
	return summarize(name, rows, rep)
}

// summarize digests an already-computed report into the golden summary
// form, for tests that obtain reports through other entry points (batches,
// the planner equivalence matrix).
func summarize(name string, rows int, rep *hypdb.Report) *reproSummary {
	s := &reproSummary{
		Dataset:      name,
		Rows:         rows,
		SQL:          rep.OriginalSQL,
		UsedFallback: rep.CD != nil && rep.CD.UsedFallback,
		Covariates:   rep.Covariates,
		Mediators:    rep.Mediators,
		Original:     effectOf(rep.OriginalComparisons),
	}
	for _, b := range rep.BiasTotal {
		s.Biased = s.Biased || b.Biased
	}
	for _, b := range rep.BiasDirect {
		s.Biased = s.Biased || b.Biased
	}
	for _, c := range rep.Coarse {
		s.Explanations = append(s.Explanations, explSummary{Attr: c.Attr, Rho: round4(c.Rho)})
	}
	s.RewrittenTotal = effectOf(rep.TotalComparisons)
	s.RewrittenDirect = effectOf(rep.DirectComparisons)
	return s
}

// checkGolden compares the summary against testdata/paperrepro/<name>, or
// rewrites the file under -update.
func checkGolden(t *testing.T, file string, s *reproSummary) {
	t.Helper()
	got, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "paperrepro", file)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (run `go test -run TestPaperRepro -update` to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("summary drifted from golden file %s\n got: %s\nwant: %s\n(rerun with -update if the change is intentional)", path, got, want)
	}
}

// TestPaperReproBerkeley pins Fig 4 (top): the aggregate admission rates
// favor men, yet the causal structure routes the whole effect through
// Department — the query is flagged biased, Department is the sole
// explanation, and the direct effect all but vanishes (the Simpson
// reversal of [5]).
func TestPaperReproBerkeley(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	s := analyzeSummary(t, "BerkeleyData", tab, datagen.BerkeleyQuery(), hypdb.WithSeed(1))

	if !s.Biased {
		t.Error("Berkeley query not flagged biased")
	}
	if len(s.Mediators) != 1 || s.Mediators[0] != "Department" {
		t.Errorf("mediators = %v, want [Department]", s.Mediators)
	}
	if len(s.Explanations) == 0 || s.Explanations[0].Attr != "Department" {
		t.Errorf("top explanation = %+v, want Department", s.Explanations)
	}
	if s.Original == nil || s.Original.Diff <= 0 || !s.Original.Significant {
		t.Errorf("original comparison = %+v, want significant Male−Female > 0", s.Original)
	}
	if s.RewrittenDirect == nil {
		t.Fatal("no direct-effect answer")
	}
	// Holding the department distribution fixed, the +0.14 aggregate gap
	// collapses (paper: the conditioned trend reverses to about −0.05 at
	// department granularity; the NDE aggregate lands near zero).
	if math.Abs(s.RewrittenDirect.Diff) >= math.Abs(s.Original.Diff)/4 {
		t.Errorf("direct effect %+v did not collapse relative to original %+v", s.RewrittenDirect, s.Original)
	}
	checkGolden(t, "berkeley.golden.json", s)
}

// TestPaperReproStaples pins Fig 3 (bottom): lower-income customers see
// the higher price, but the effect is entirely mediated by Distance — the
// direct income→price effect is insignificant, and Distance carries all
// the responsibility.
func TestPaperReproStaples(t *testing.T) {
	const rows = 50000
	tab, err := datagen.Staples(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := analyzeSummary(t, "StaplesData", tab, datagen.StaplesQuery(), hypdb.WithSeed(1))

	if !s.Biased {
		t.Error("Staples query not flagged biased")
	}
	if len(s.Mediators) != 1 || s.Mediators[0] != "Distance" {
		t.Errorf("mediators = %v, want [Distance]", s.Mediators)
	}
	if len(s.Explanations) == 0 || s.Explanations[0].Attr != "Distance" || s.Explanations[0].Rho < 0.99 {
		t.Errorf("top explanation = %+v, want Distance with responsibility ≈ 1", s.Explanations)
	}
	// T0="0" (low income), T1="1" (high income): high-income customers pay
	// less on average, significantly.
	if s.Original == nil || s.Original.Diff >= 0 || !s.Original.Significant {
		t.Errorf("original comparison = %+v, want significant avg(high)−avg(low) < 0", s.Original)
	}
	// The ground truth has no direct Income → Price edge: the mediator
	// formula's answer must be statistically indistinguishable from zero.
	if s.RewrittenDirect == nil || s.RewrittenDirect.Significant {
		t.Errorf("direct effect = %+v, want insignificant (no direct edge)", s.RewrittenDirect)
	}
	checkGolden(t, "staples.golden.json", s)
}

// TestPaperReproFlight pins Fig 1 via discovery: the biased query says AA
// beats UA, HypDB flags it and ranks Airport as the dominant explanation,
// and holding the airport mix fixed reverses the comparison (UA is better
// at every study airport).
func TestPaperReproFlight(t *testing.T) {
	const rows = 12000
	tab, err := datagen.Flight(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := analyzeSummary(t, "FlightData", tab, datagen.FlightQuery(),
		hypdb.WithSeed(1), hypdb.WithPermutations(200))

	if !s.Biased {
		t.Error("Flight query not flagged biased")
	}
	if len(s.Explanations) == 0 || s.Explanations[0].Attr != "Airport" || s.Explanations[0].Rho < 0.9 {
		t.Errorf("top explanation = %+v, want Airport with dominant responsibility", s.Explanations)
	}
	// Original answer: UA looks worse (avg(UA)−avg(AA) > 0, T0=AA lexic.).
	if s.Original == nil || s.Original.T1 != "UA" || s.Original.Diff <= 0 || !s.Original.Significant {
		t.Errorf("original comparison = %+v, want significant avg(UA)−avg(AA) > 0", s.Original)
	}
	// Refined answer: with the airport mix held fixed the sign flips — the
	// Fig 1 reversal.
	if s.RewrittenDirect == nil || s.RewrittenDirect.Diff >= 0 {
		t.Errorf("refined comparison = %+v, want reversed (UA better)", s.RewrittenDirect)
	}
	checkGolden(t, "flight.golden.json", s)
}

// TestPaperReproFlightFixedCovariates pins the Fig 5(a) setup: rewriting
// w.r.t. the fixed potential covariates (Airport, DayofMonth, Month,
// DayOfWeek) — the adjusted total effect reverses the biased answer.
func TestPaperReproFlightFixedCovariates(t *testing.T) {
	const rows = 12000
	tab, err := datagen.Flight(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := analyzeSummary(t, "FlightData-fixed-covariates", tab, datagen.FlightQuery(),
		hypdb.WithSeed(1), hypdb.WithPermutations(200),
		hypdb.WithCovariates(datagen.FlightCovariates()...), hypdb.WithoutDirectEffect())

	if !s.Biased {
		t.Error("Flight query not flagged biased w.r.t. the fixed covariates")
	}
	if len(s.Explanations) == 0 || s.Explanations[0].Attr != "Airport" {
		t.Errorf("top explanation = %+v, want Airport", s.Explanations)
	}
	if s.Original == nil || s.Original.Diff <= 0 {
		t.Errorf("original comparison = %+v, want avg(UA)−avg(AA) > 0", s.Original)
	}
	if s.RewrittenTotal == nil || s.RewrittenTotal.Diff >= 0 {
		t.Errorf("adjusted total effect = %+v, want reversed (UA better)", s.RewrittenTotal)
	}
	checkGolden(t, "flight_fixed_covariates.golden.json", s)
}
