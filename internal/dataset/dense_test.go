package dataset

import (
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

// randomDenseTable builds a table of k categorical columns with the given
// cardinalities and n rows.
func randomDenseTable(t testing.TB, n int, cards []int, seed int64) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, len(cards))
	for i := range cards {
		names[i] = "A" + strconv.Itoa(i)
	}
	b := NewBuilder(names...)
	vals := make([]string, len(cards))
	for i := 0; i < n; i++ {
		for j, c := range cards {
			vals[j] = "v" + strconv.Itoa(rng.Intn(c))
		}
		b.MustAdd(vals...)
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// mapCounts is the historical sparse tabulation, kept here as the oracle the
// dense kernel must agree with.
func mapCounts(t *Table, pred Predicate, attrs ...string) (map[GroupKey]int, error) {
	enc, err := NewKeyEncoder(t, attrs)
	if err != nil {
		return nil, err
	}
	var match []bool
	if pred != nil {
		match, err = pred.Eval(t)
		if err != nil {
			return nil, err
		}
	}
	m := make(map[GroupKey]int)
	for i := 0; i < t.NumRows(); i++ {
		if match == nil || match[i] {
			m[enc.Key(i)]++
		}
	}
	return m, nil
}

// TestDenseCountsEquivalence is the core property: for random tables,
// attribute subsets and predicates, the dense kernel and the sparse map path
// produce identical count maps — including empty attribute lists (the global
// row count) and predicates that match nothing.
func TestDenseCountsEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCols := 1 + rng.Intn(4)
		cards := make([]int, nCols)
		for i := range cards {
			cards[i] = 1 + rng.Intn(5)
		}
		tab := randomDenseTable(t, 10+rng.Intn(400), cards, seed^0x51)

		names := tab.Columns()
		subsets := [][]string{nil, {names[0]}, names}
		if nCols > 1 {
			subsets = append(subsets, []string{names[nCols-1], names[0]})
		}
		preds := []Predicate{
			nil,
			Eq{Attr: names[0], Value: "v0"},
			Eq{Attr: names[0], Value: "no-such-label"},
			And{Eq{Attr: names[0], Value: "v0"}, Not{Pred: Eq{Attr: names[nCols-1], Value: "v1"}}},
		}
		for _, attrs := range subsets {
			for _, pred := range preds {
				want, err := mapCounts(tab, pred, attrs...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tab.CountsMatching(pred, attrs...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d attrs %v pred %v: dense %v != map %v", seed, attrs, pred, got, want)
				}
				dc, err := tab.DenseCountsMatching(pred, attrs...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(dc.Map(), want) {
					t.Fatalf("seed %d attrs %v: DenseCounts.Map mismatch", seed, attrs)
				}
				wantTotal := 0
				for _, c := range want {
					wantTotal += c
				}
				if dc.Total != wantTotal {
					t.Fatalf("seed %d attrs %v: Total %d, want %d", seed, attrs, dc.Total, wantTotal)
				}
				if dc.NonZero() != len(want) {
					t.Fatalf("seed %d attrs %v: NonZero %d, want %d", seed, attrs, dc.NonZero(), len(want))
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDenseProjectEquivalence: marginalizing a dense view onto any ordered
// attribute subset matches counting that subset directly, including
// reordered projections.
func TestDenseProjectEquivalence(t *testing.T) {
	tab := randomDenseTable(t, 700, []int{3, 4, 2, 5}, 7)
	names := tab.Columns()
	full, err := tab.DenseCounts(names...)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]int{{0}, {1, 2}, {3, 0}, {2, 1, 0}, {0, 1, 2, 3}, {3, 2, 1, 0}, {}}
	for _, keep := range cases {
		attrs := make([]string, len(keep))
		for i, p := range keep {
			attrs[i] = names[p]
		}
		got, err := full.Project(keep)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tab.DenseCounts(attrs...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Cells, want.Cells) {
			t.Errorf("projection %v: cells %v != direct %v", keep, got.Cells, want.Cells)
		}
		if got.Total != want.Total {
			t.Errorf("projection %v: total %d != %d", keep, got.Total, want.Total)
		}
		if !reflect.DeepEqual(got.Map(), want.Map()) {
			t.Errorf("projection %v: map form differs", keep)
		}
	}
	if _, err := full.Project([]int{0, 0}); err == nil {
		t.Error("duplicate projection position accepted")
	}
	if _, err := full.Project([]int{9}); err == nil {
		t.Error("out-of-range projection position accepted")
	}
}

// TestProjectKeysEquivalence: the sparse marginalization helper agrees with
// dense projection on the map form.
func TestProjectKeysEquivalence(t *testing.T) {
	tab := randomDenseTable(t, 300, []int{4, 3, 2}, 11)
	names := tab.Columns()
	counts, _, err := tab.Counts(names...)
	if err != nil {
		t.Fatal(err)
	}
	for _, fields := range [][]int{{0}, {2, 0}, {1, 2}, {0, 1, 2}} {
		attrs := make([]string, len(fields))
		for i, f := range fields {
			attrs[i] = names[f]
		}
		want, _, err := tab.Counts(attrs...)
		if err != nil {
			t.Fatal(err)
		}
		got := ProjectKeys(counts, fields)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("fields %v: ProjectKeys %v != direct %v", fields, got, want)
		}
	}
}

// TestDenseGroupByEquivalence: the dense GroupBy path preserves the
// historical output exactly — group order, key bytes and row order.
func TestDenseGroupByEquivalence(t *testing.T) {
	tab := randomDenseTable(t, 500, []int{3, 4}, 13)
	names := tab.Columns()
	groups, enc, err := tab.GroupBy(names...)
	if err != nil {
		t.Fatal(err)
	}
	if enc == nil {
		t.Fatal("nil encoder")
	}
	// Oracle: sparse partition.
	m := map[GroupKey][]int{}
	for i := 0; i < tab.NumRows(); i++ {
		k := enc.Key(i)
		m[k] = append(m[k], i)
	}
	if len(groups) != len(m) {
		t.Fatalf("got %d groups, want %d", len(groups), len(m))
	}
	for i, g := range groups {
		if i > 0 && !(groups[i-1].Key < g.Key) {
			t.Fatalf("groups not sorted at %d", i)
		}
		if !reflect.DeepEqual(g.Rows, m[g.Key]) {
			t.Fatalf("group %v rows differ", g.Key.Codes())
		}
	}
}

// TestDenseParallelScan exercises the chunked parallel tabulation (row count
// above the fan-out threshold) and checks it against the serial oracle; run
// under -race this doubles as the data-race check of the worker merge.
func TestDenseParallelScan(t *testing.T) {
	if testing.Short() {
		t.Skip("large table")
	}
	tab := randomDenseTable(t, parallelMinRows+1234, []int{5, 3, 2}, 17)
	names := tab.Columns()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dc, err := tab.DenseCounts(names...)
			if err != nil {
				t.Error(err)
				return
			}
			want, err := mapCounts(tab, nil, names...)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(dc.Map(), want) {
				t.Error("parallel dense disagrees with serial map oracle")
			}
			if dc.Total != tab.NumRows() {
				t.Errorf("Total %d, want %d", dc.Total, tab.NumRows())
			}
		}()
	}
	wg.Wait()
}

// TestDenseBudgetFallback: Counts falls back to the sparse path above the
// cell budget and still returns identical results.
func TestDenseBudgetFallback(t *testing.T) {
	// Two columns whose cardinality product exceeds any budget ≤ 2^22 would
	// need a huge table; instead check DenseSize arithmetic directly and the
	// overflow guard.
	if _, ok := DenseSize([]int{1 << 12, 1 << 12}, 1<<22); ok {
		t.Error("2^24 cells fit a 2^22 budget")
	}
	if size, ok := DenseSize([]int{64, 64}, 1<<22); !ok || size != 4096 {
		t.Errorf("DenseSize = (%d,%v)", size, ok)
	}
	if _, ok := DenseSize([]int{1 << 31, 1 << 31, 1 << 31}, 1<<62); ok {
		t.Error("overflowing product accepted")
	}
	if _, ok := DenseSize([]int{0}, 0); ok {
		t.Error("zero cardinality accepted")
	}
}

func TestAddKeyValidation(t *testing.T) {
	dc, err := NewDenseCounts([]string{"a", "b"}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.AddKey(EncodeKey(1, 2), 5); err != nil {
		t.Fatal(err)
	}
	if dc.Cells[1+2*2] != 5 || dc.Total != 5 {
		t.Errorf("cells %v total %d", dc.Cells, dc.Total)
	}
	if err := dc.AddKey(EncodeKey(1), 1); err == nil {
		t.Error("short key accepted")
	}
	if err := dc.AddKey(EncodeKey(2, 0), 1); err == nil {
		t.Error("out-of-dictionary code accepted")
	}
}

func BenchmarkDenseVsMapCounts(b *testing.B) {
	tab := randomDenseTable(b, 100000, []int{8, 6, 4, 2}, 3)
	names := tab.Columns()
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tab.DenseCounts(names...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mapCounts(tab, nil, names...); err != nil {
				b.Fatal(err)
			}
		}
	})
}
