package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"hypdb/internal/dataset"
	"hypdb/internal/query"
)

// StaplesRows is the default row count, matching Table 1 (988,871 rows).
const StaplesRows = 988871

// Staples generates the StaplesData substitute (6 columns): the WSJ online
// pricing investigation the paper analyzes in Fig 3 (bottom). The causal
// chain is
//
//	Urban → Income, Urban → Distance, Income → Distance → Price,
//
// with *no* direct Income → Price edge: lower-income customers tend to
// live far from competitors' stores, and far customers get the higher
// price. The calibration reproduces the reported SQL answers
// (avg price ≈ 0.06 for low income vs 0.05 for high) with a zero direct
// effect.
func Staples(n int, seed int64) (*dataset.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: Staples with %d rows", n)
	}
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("CustomerID", "State", "Urban", "Income", "Distance", "Price")
	states := []string{"WA", "CA", "TX", "NY", "FL"}
	row := make([]string, 6)
	for i := 0; i < n; i++ {
		urban := rng.Float64() < 0.55
		// Income | Urban.
		pHigh := 0.35
		if urban {
			pHigh = 0.55
		}
		highIncome := rng.Float64() < pHigh
		// Distance | Income, Urban: low income and rural → far.
		pFar := 0.20
		if !highIncome {
			pFar += 0.30
		}
		if !urban {
			pFar += 0.15
		}
		far := rng.Float64() < pFar
		// Price | Distance only (no direct income edge).
		pHighPrice := 0.04
		if far {
			pHighPrice = 0.07
		}
		price := bernoulli(rng, pHighPrice)

		income := "0"
		if highIncome {
			income = "1"
		}
		dist := "near"
		if far {
			dist = "far"
		}
		u := "rural"
		if urban {
			u = "urban"
		}
		row[0] = strconv.Itoa(i) // key-like
		row[1] = states[rng.Intn(len(states))]
		row[2] = u
		row[3] = income
		row[4] = dist
		row[5] = strconv.Itoa(price)
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	return b.Table()
}

// StaplesQuery is the Fig 3 (bottom) query: average price by income.
func StaplesQuery() query.Query {
	return query.Query{
		Table:     "StaplesData",
		Treatment: "Income",
		Outcomes:  []string{"Price"},
	}
}
