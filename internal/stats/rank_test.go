package stats

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRankDescending(t *testing.T) {
	got := RankDescending([]float64{0.1, 0.9, 0.5})
	if !reflect.DeepEqual(got, []int{1, 2, 0}) {
		t.Errorf("RankDescending = %v, want [1 2 0]", got)
	}
	// Ties break on lower index.
	got = RankDescending([]float64{0.5, 0.5, 0.9})
	if !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Errorf("RankDescending ties = %v, want [2 0 1]", got)
	}
	if got := RankDescending(nil); len(got) != 0 {
		t.Errorf("RankDescending(nil) = %v", got)
	}
}

func TestBordaAggregateAgreement(t *testing.T) {
	// Two identical rankings: the consensus is the same ranking.
	r := []int{2, 0, 1}
	got := BordaAggregate(r, r)
	if !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Errorf("BordaAggregate = %v, want [2 0 1]", got)
	}
}

func TestBordaAggregateCompromise(t *testing.T) {
	// Ranking A: 0 > 1 > 2; Ranking B: 1 > 0 > 2.
	// Points: item0 = 3+2 = 5, item1 = 2+3 = 5, item2 = 1+1 = 2.
	// Tie between 0 and 1 breaks on lower index.
	got := BordaAggregate([]int{0, 1, 2}, []int{1, 0, 2})
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("BordaAggregate = %v, want [0 1 2]", got)
	}
	// A third ranking favoring 1 breaks the tie.
	got = BordaAggregate([]int{0, 1, 2}, []int{1, 0, 2}, []int{1, 2, 0})
	if got[0] != 1 {
		t.Errorf("BordaAggregate winner = %d, want 1", got[0])
	}
}

func TestBordaAggregateInvalid(t *testing.T) {
	if got := BordaAggregate(); got != nil {
		t.Errorf("no rankings: got %v, want nil", got)
	}
	if got := BordaAggregate([]int{0, 1}, []int{0}); got != nil {
		t.Errorf("length mismatch: got %v, want nil", got)
	}
	if got := BordaAggregate([]int{0, 0}); got != nil {
		t.Errorf("duplicate item: got %v, want nil", got)
	}
	if got := BordaAggregate([]int{0, 5}); got != nil {
		t.Errorf("out-of-range item: got %v, want nil", got)
	}
}

// Property: the Borda consensus of random permutations is itself a
// permutation of 0..n−1.
func TestQuickBordaIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		k := 1 + r.Intn(4)
		rankings := make([][]int, k)
		for i := range rankings {
			rankings[i] = r.Perm(n)
		}
		got := BordaAggregate(rankings...)
		if len(got) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: an item ranked first by every input ranking wins the consensus.
func TestQuickBordaUnanimity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		winner := r.Intn(n)
		k := 1 + r.Intn(4)
		rankings := make([][]int, k)
		for i := range rankings {
			rest := r.Perm(n)
			// Move winner to front.
			out := []int{winner}
			for _, v := range rest {
				if v != winner {
					out = append(out, v)
				}
			}
			rankings[i] = out
		}
		got := BordaAggregate(rankings...)
		return got != nil && got[0] == winner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}
