package independence

import (
	"context"
	"fmt"
	"sort"

	"hypdb/internal/stats"
	"hypdb/source"
)

// MaterializedProvider implements the "materializing contingency tables"
// optimization of Sec 6: the joint counts over a fixed attribute superset
// are computed once (one group-by count query against the backend), and
// every entropy or distinct-count request over a subset is answered by
// marginalizing the materialized table, which is much smaller than the data
// because the attributes involved in one CD phase are few and correlated.
type MaterializedProvider struct {
	attrs   []string
	attrPos map[string]int
	counts  map[string]int // composite key over attrs -> count
	n       int
	est     stats.Estimator

	// marginals caches derived subset histograms keyed by the subset mask.
	marginals map[uint64]map[string]int
}

// NewMaterializedProvider issues one count query over the superset attrs.
func NewMaterializedProvider(ctx context.Context, rel source.Relation, attrs []string, est stats.Estimator) (*MaterializedProvider, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("independence: materialization needs at least one attribute")
	}
	if len(attrs) > 62 {
		return nil, fmt.Errorf("independence: materialization over %d attributes", len(attrs))
	}
	n, err := rel.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	p := &MaterializedProvider{
		attrs:     append([]string(nil), attrs...),
		attrPos:   make(map[string]int, len(attrs)),
		n:         n,
		est:       est,
		marginals: make(map[uint64]map[string]int),
	}
	for i, a := range attrs {
		if _, dup := p.attrPos[a]; dup {
			return nil, fmt.Errorf("independence: duplicate attribute %q", a)
		}
		p.attrPos[a] = i
	}
	counts, err := rel.Counts(ctx, attrs, nil)
	if err != nil {
		return nil, err
	}
	p.counts = make(map[string]int, len(counts))
	for k, v := range counts {
		p.counts[string(k)] = v
	}
	full := uint64(1)<<len(attrs) - 1
	p.marginals[full] = p.counts
	return p, nil
}

// Covers reports whether the provider can answer for the attribute set.
func (p *MaterializedProvider) Covers(attrs []string) bool {
	_, ok := p.mask(attrs)
	return ok
}

func (p *MaterializedProvider) mask(attrs []string) (uint64, bool) {
	var m uint64
	for _, a := range attrs {
		pos, ok := p.attrPos[a]
		if !ok {
			return 0, false
		}
		m |= 1 << pos
	}
	return m, true
}

// subsetCounts derives (and caches) the histogram of the attr subset given
// by mask, by projecting the materialized keys.
func (p *MaterializedProvider) subsetCounts(mask uint64) map[string]int {
	if v, ok := p.marginals[mask]; ok {
		return v
	}
	// Project the full keys onto the masked fields.
	keep := make([]int, 0, len(p.attrs))
	for i := range p.attrs {
		if mask&(1<<i) != 0 {
			keep = append(keep, i)
		}
	}
	out := make(map[string]int)
	buf := make([]byte, 0, 4*len(keep))
	for k, c := range p.counts {
		buf = buf[:0]
		for _, i := range keep {
			buf = append(buf, k[4*i:4*i+4]...)
		}
		out[string(buf)] += c
	}
	p.marginals[mask] = out
	return out
}

// JointEntropy implements EntropyProvider; the attribute set must be
// covered by the materialized superset.
func (p *MaterializedProvider) JointEntropy(ctx context.Context, attrs []string) (float64, error) {
	if len(attrs) == 0 {
		return 0, nil
	}
	m, ok := p.mask(attrs)
	if !ok {
		return 0, fmt.Errorf("independence: attributes %v not covered by materialization over %v",
			missing(attrs, p.attrPos), p.attrs)
	}
	return stats.EntropyCountsMap(p.subsetCounts(m), p.n, p.est), nil
}

// DistinctCount implements EntropyProvider.
func (p *MaterializedProvider) DistinctCount(ctx context.Context, attrs []string) (int, error) {
	if len(attrs) == 0 {
		return 1, nil
	}
	m, ok := p.mask(attrs)
	if !ok {
		return 0, fmt.Errorf("independence: attributes %v not covered by materialization over %v",
			missing(attrs, p.attrPos), p.attrs)
	}
	return len(p.subsetCounts(m)), nil
}

// NumRows implements EntropyProvider.
func (p *MaterializedProvider) NumRows() int { return p.n }

func missing(attrs []string, have map[string]int) []string {
	var out []string
	for _, a := range attrs {
		if _, ok := have[a]; !ok {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}
