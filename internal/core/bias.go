package core

import (
	"context"
	"fmt"
	"strconv"

	"hypdb/internal/dataset"
	"hypdb/internal/independence"
)

// BiasResult is the verdict of the balance test (Def 3.1) for one context
// Γi: the query is balanced w.r.t. V in Γi iff T ⊥⊥ V | Γi, i.e.
// I(T;V|Γi) = 0.
type BiasResult struct {
	// Context holds the grouping values defining Γi (empty when the query
	// has no group-by attributes beyond the treatment).
	Context []string
	// Variables is the set V tested: the covariates Z for total effect, or
	// Z ∪ M for direct effect (Sec 3.1).
	Variables []string
	// MI is Î(T;V|Γi).
	MI float64
	// PValue (and its Monte-Carlo half-width, when applicable) of the
	// independence test.
	PValue   float64
	PValueCI float64
	// Biased is true when independence is rejected at the configured α.
	Biased bool
	// Rows is the context's population size.
	Rows int
}

// compositeAttr is the synthetic column name used to test the treatment
// against the joint value of a variable set.
const compositeAttr = "__hypdb_composite"

// withComposite returns a copy of view extended with a column holding the
// composite (joint) value of attrs.
func withComposite(view *dataset.Table, attrs []string) (*dataset.Table, error) {
	enc, err := dataset.NewKeyEncoder(view, attrs)
	if err != nil {
		return nil, err
	}
	codes := make([]int32, view.NumRows())
	labels := []string{}
	index := make(map[dataset.GroupKey]int32)
	for i := 0; i < view.NumRows(); i++ {
		k := enc.Key(i)
		code, ok := index[k]
		if !ok {
			code = int32(len(labels))
			index[k] = code
			labels = append(labels, "v"+strconv.Itoa(int(code)))
		}
		codes[i] = code
	}
	comp, err := dataset.NewColumnFromCodes(compositeAttr, codes, labels)
	if err != nil {
		return nil, err
	}
	cols := make([]*dataset.Column, 0, view.NumCols()+1)
	for _, name := range view.Columns() {
		c, err := view.Column(name)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	cols = append(cols, comp)
	return dataset.New(cols...)
}

// TestBalance tests whether treatment ⊥⊥ variables holds on view (one
// context), optionally conditioning on extra attributes (used for the
// rewritten-query significance test I(Y;T|Z)).
func (c Config) TestBalance(ctx context.Context, view *dataset.Table, treatment string, variables, conditionOn []string) (independence.Result, error) {
	if len(variables) == 0 {
		return independence.Result{PValue: 1, Method: "trivial"}, nil
	}
	testAttr := variables[0]
	testView := view
	if len(variables) > 1 {
		var err error
		testView, err = withComposite(view, variables)
		if err != nil {
			return independence.Result{}, err
		}
		testAttr = compositeAttr
	}
	hint := unionAttrs([]string{treatment, testAttr}, conditionOn, nil)
	tester, err := c.tester(testView, hint)
	if err != nil {
		return independence.Result{}, err
	}
	return tester.Test(ctx, testView, treatment, testAttr, conditionOn)
}

// DetectBias runs the Def 3.1 balance test per context: for each
// combination of grouping values xi it selects Γi = C ∧ (X = xi) and tests
// T ⊥⊥ V | Γi. With no groupings there is a single context (the WHERE
// population).
func DetectBias(ctx context.Context, t *dataset.Table, treatment string, groupings, variables []string, cfg Config) ([]BiasResult, error) {
	if len(variables) == 0 {
		return nil, fmt.Errorf("core: bias detection needs a non-empty variable set V")
	}
	contexts, err := splitContexts(t, groupings)
	if err != nil {
		return nil, err
	}
	var out []BiasResult
	for _, c := range contexts {
		res, err := cfg.TestBalance(ctx, c.view, treatment, variables, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, BiasResult{
			Context:   c.values,
			Variables: append([]string(nil), variables...),
			MI:        res.MI,
			PValue:    res.PValue,
			PValueCI:  res.PValueCI,
			Biased:    !independence.Decision(res, cfg.alpha()),
			Rows:      c.view.NumRows(),
		})
	}
	return out, nil
}

// contextView is one Γi: the grouping values and the row view they select.
type contextView struct {
	values []string
	view   *dataset.Table
}

// splitContexts partitions the table by the grouping attributes. With no
// groupings the whole table is the single context.
func splitContexts(t *dataset.Table, groupings []string) ([]contextView, error) {
	if len(groupings) == 0 {
		return []contextView{{view: t}}, nil
	}
	groups, enc, err := t.GroupBy(groupings...)
	if err != nil {
		return nil, err
	}
	out := make([]contextView, 0, len(groups))
	for _, g := range groups {
		view, err := t.SelectRows(g.Rows)
		if err != nil {
			return nil, err
		}
		codes := enc.Codes(g.Key)
		values := make([]string, len(groupings))
		for i, a := range groupings {
			col, err := t.Column(a)
			if err != nil {
				return nil, err
			}
			values[i] = col.Label(codes[i])
		}
		out = append(out, contextView{values: values, view: view})
	}
	return out, nil
}
