package hypdb_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hypdb"
	"hypdb/internal/datagen"
	"hypdb/internal/server"
)

// startAuthedPeerCluster boots one token-protected hypdbd node per
// sub-table and returns "url@token" peer specs alongside the raw URLs.
// Each peer gets its own secret, so a coordinator must carry per-peer
// credentials — one shared token would not exercise the spec plumbing.
func startAuthedPeerCluster(tb testing.TB, name string, parts []*hypdb.Table, secrets []string) (specs, urls []string) {
	tb.Helper()
	for i, part := range parts {
		srv := server.New(server.Config{
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			Tokens: []server.Token{{Name: "coord", Scope: server.ScopeReader, Secret: secrets[i], Weight: 1}},
		})
		if err := srv.AddDataset(name, part); err != nil {
			tb.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		tb.Cleanup(ts.Close)
		tb.Cleanup(srv.Close)
		specs = append(specs, ts.URL+"@"+secrets[i])
		urls = append(urls, ts.URL)
	}
	return specs, urls
}

// TestAuthedMeshReproBerkeley mounts a 2-peer token-protected loopback
// cluster through "url@token" specs and requires the Fig 4 (top)
// reproduction to stay byte-identical to the single-process golden:
// authentication must be invisible to the analysis pipeline.
func TestAuthedMeshReproBerkeley(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := startAuthedPeerCluster(t, "BerkeleyData", splitContiguous(t, tab, 2), []string{"secret-a", "secret-b"})
	db, err := hypdb.OpenRemote(context.Background(), "BerkeleyData",
		hypdb.WithRemoteShards(specs...), hypdb.WithRemoteOptions(fastRemote()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := analyzeSummaryOn(t, "BerkeleyData", db, tab.NumRows(), datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	checkGolden(t, "berkeley.golden.json", s)
}

// TestAuthedMeshWrongTokenFailsFast presents a bad (and then a missing)
// credential to a token-protected peer: the handshake must surface the
// typed ErrPeerAuth immediately — a credential problem is deterministic,
// so the transport must not burn its retry/backoff schedule on it.
func TestAuthedMeshWrongTokenFailsFast(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	specs, urls := startAuthedPeerCluster(t, "BerkeleyData", splitContiguous(t, tab, 1), []string{"right-token"})
	_ = specs

	// A generous backoff turns any accidental retry into a visible stall:
	// with 3 retries the schedule would cost >= 3s, so the elapsed bound
	// below proves the auth fault short-circuited the retry loop.
	opts := fastRemote()
	opts.MaxRetries = 3
	opts.RetryBackoff = time.Second

	for _, tc := range []struct{ name, spec string }{
		{"wrong token", urls[0] + "@wrong-token"},
		{"missing token", urls[0]},
	} {
		start := time.Now()
		_, err := hypdb.OpenRemote(context.Background(), "BerkeleyData",
			hypdb.WithRemoteShards(tc.spec), hypdb.WithRemoteOptions(opts))
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("%s: handshake succeeded", tc.name)
		}
		if !errors.Is(err, hypdb.ErrPeerAuth) {
			t.Fatalf("%s: err = %v, want ErrPeerAuth", tc.name, err)
		}
		if errors.Is(err, hypdb.ErrPeerUnavailable) {
			t.Errorf("%s: auth fault also marked ErrPeerUnavailable — degradable", tc.name)
		}
		if elapsed > 900*time.Millisecond {
			t.Errorf("%s: handshake took %v — the transport retried a deterministic auth fault", tc.name, elapsed)
		}
	}
}

// TestAuthedMeshRevocationMidAudit revokes one peer's credential while the
// coordinator is mid-workload: the next reads must fail with the typed
// ErrPeerAuth — cleanly and promptly, with no hang — and degraded reads
// must NOT absorb the fault into a stale answer, because serving data
// after a credential revocation is exactly what revocation forbids.
func TestAuthedMeshRevocationMidAudit(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	// Peer 1 sits behind a revocation toggle answering every request with
	// the 401 wire envelope once flipped — the response a live hypdbd
	// gives after its operator rotates tokens.
	var revoked atomic.Bool
	parts := splitContiguous(t, tab, 2)
	secrets := []string{"tok-0", "tok-1"}
	var specs []string
	for i, part := range parts {
		srv := server.New(server.Config{
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			Tokens: []server.Token{{Name: "coord", Scope: server.ScopeReader, Secret: secrets[i], Weight: 1}},
		})
		if err := srv.AddDataset("BerkeleyData", part); err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		if i == 1 {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if revoked.Load() {
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(http.StatusUnauthorized)
					_, _ = w.Write([]byte(`{"error":{"code":"unauthorized","message":"token revoked"}}`))
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		t.Cleanup(srv.Close)
		specs = append(specs, ts.URL+"@"+secrets[i])
	}

	ctx := context.Background()
	db, err := hypdb.OpenRemote(ctx, "BerkeleyData",
		hypdb.WithRemoteShards(specs...), hypdb.WithRemoteOptions(fastRemote()), hypdb.WithDegradedReads())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	// The successful OpenRemote handshake above already proves both
	// credentials work: registration pins each peer's version through an
	// authenticated counts call. No warm-up analyze here — it would prime
	// the coordinator's count cache and let the audit run without ever
	// revisiting the revoked peer, masking the fault this test is about.
	revoked.Store(true)
	// The hang-guard deadline only trips if the audit neither finishes nor
	// fails — the exact failure mode this test exists to rule out.
	auditCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	_, err = db.Audit(auditCtx, hypdb.AuditSpec{
		Treatments: []string{"Gender"}, Outcomes: []string{"Accepted"}, TopK: 3,
	}, hypdb.WithSeed(1))
	if err == nil {
		t.Fatal("audit after revocation succeeded — degraded reads masked an auth fault")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("audit after revocation hung until the guard deadline: %v", err)
	}
	if !errors.Is(err, hypdb.ErrPeerAuth) {
		t.Fatalf("audit after revocation: err = %v, want ErrPeerAuth", err)
	}

	// Restoring the credential restores service — the fault did not latch
	// the peer unhealthy the way an exhausted retry budget does.
	revoked.Store(false)
	s := analyzeSummaryOn(t, "BerkeleyData", db, tab.NumRows(), datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	checkGolden(t, "berkeley.golden.json", s)
}
