package contingency

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hypdb/internal/stats"
)

func TestTable2Basics(t *testing.T) {
	tab, err := NewTable2(2, 3)
	if err != nil {
		t.Fatalf("NewTable2: %v", err)
	}
	tab.Add(0, 0, 5)
	tab.Add(1, 2, 3)
	tab.Set(0, 0, 2)
	if got := tab.At(0, 0); got != 2 {
		t.Errorf("At(0,0) = %d, want 2", got)
	}
	if got := tab.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	if got := tab.RowTotals(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("RowTotals = %v", got)
	}
	if got := tab.ColTotals(); !reflect.DeepEqual(got, []int{2, 0, 3}) {
		t.Errorf("ColTotals = %v", got)
	}
	if _, err := NewTable2(0, 2); err == nil {
		t.Error("invalid shape accepted")
	}
}

func TestFromCodes(t *testing.T) {
	x := []int32{0, 0, 1, 1, 1}
	y := []int32{0, 1, 0, 1, 1}
	tab, err := FromCodes(x, y, 2, 2)
	if err != nil {
		t.Fatalf("FromCodes: %v", err)
	}
	want := [][]int{{1, 1}, {1, 2}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if tab.At(i, j) != want[i][j] {
				t.Errorf("At(%d,%d) = %d, want %d", i, j, tab.At(i, j), want[i][j])
			}
		}
	}
	if _, err := FromCodes([]int32{0}, []int32{0, 1}, 2, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromCodes([]int32{5}, []int32{0}, 2, 2); err == nil {
		t.Error("out-of-range code accepted")
	}
}

func TestFromCodesRows(t *testing.T) {
	x := []int32{0, 0, 1, 1}
	y := []int32{0, 1, 0, 1}
	tab, err := FromCodesRows(x, y, []int{1, 3}, 2, 2)
	if err != nil {
		t.Fatalf("FromCodesRows: %v", err)
	}
	if tab.Total() != 2 || tab.At(0, 1) != 1 || tab.At(1, 1) != 1 {
		t.Errorf("unexpected table: total=%d", tab.Total())
	}
	if _, err := FromCodesRows(x, y, []int{9}, 2, 2); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestTable2MIMatchesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(3))
		y[i] = (x[i] + int32(rng.Intn(2))) % 4
	}
	tab, err := FromCodes(x, y, 3, 4)
	if err != nil {
		t.Fatalf("FromCodes: %v", err)
	}
	for _, est := range []stats.Estimator{stats.PlugIn, stats.MillerMadow} {
		want, err := stats.MutualInformationCodes(x, y, 3, 4, est)
		if err != nil {
			t.Fatal(err)
		}
		if got := tab.MI(est); math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: table MI = %v, stats MI = %v", est, got, want)
		}
	}
}

func TestDegreesOfFreedom(t *testing.T) {
	tab, _ := NewTable2(3, 4)
	tab.Add(0, 0, 1)
	tab.Add(1, 1, 1)
	// Only 2 non-empty rows and 2 non-empty cols: df = 1.
	if got := tab.DegreesOfFreedom(); got != 1 {
		t.Errorf("df = %d, want 1", got)
	}
	tab.Add(2, 2, 1)
	tab.Add(2, 3, 1)
	if got := tab.DegreesOfFreedom(); got != (3-1)*(4-1) {
		t.Errorf("df = %d, want 6", got)
	}
	empty, _ := NewTable2(2, 2)
	if got := empty.DegreesOfFreedom(); got != 0 {
		t.Errorf("df of empty table = %d, want 0", got)
	}
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler([]int{3, 2}, []int{4, 2}); err == nil {
		t.Error("mismatched marginal sums accepted")
	}
	if _, err := NewSampler([]int{-1, 2}, []int{1}); err == nil {
		t.Error("negative row total accepted")
	}
	if _, err := NewSampler(nil, []int{1}); err == nil {
		t.Error("empty row totals accepted")
	}
	if _, err := NewSampler([]int{0}, []int{0}); err == nil {
		t.Error("all-zero table accepted")
	}
}

func TestSamplePreservesMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := []int{17, 9, 24}
	cols := []int{10, 5, 20, 15}
	s, err := NewSampler(rows, cols)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	dst, _ := NewTable2(3, 4)
	for trial := 0; trial < 200; trial++ {
		if err := s.Sample(rng, dst); err != nil {
			t.Fatalf("Sample: %v", err)
		}
		if !reflect.DeepEqual(dst.RowTotals(), rows) {
			t.Fatalf("trial %d: row totals %v, want %v", trial, dst.RowTotals(), rows)
		}
		if !reflect.DeepEqual(dst.ColTotals(), cols) {
			t.Fatalf("trial %d: col totals %v, want %v", trial, dst.ColTotals(), cols)
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				if dst.At(i, j) < 0 {
					t.Fatalf("trial %d: negative cell (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestSampleShapeMismatch(t *testing.T) {
	s, err := NewSampler([]int{2, 2}, []int{2, 2})
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	wrong, _ := NewTable2(3, 2)
	if err := s.Sample(rand.New(rand.NewSource(1)), wrong); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// hypergeometricPMF returns P(X=k) for the 2x2 table cell distribution with
// row total a, column total b, grand total n.
func hypergeometricPMF(k, a, b, n int) float64 {
	lchoose := func(n, k int) float64 {
		if k < 0 || k > n {
			return math.Inf(-1)
		}
		ln, _ := math.Lgamma(float64(n + 1))
		lk, _ := math.Lgamma(float64(k + 1))
		lnk, _ := math.Lgamma(float64(n - k + 1))
		return ln - lk - lnk
	}
	return math.Exp(lchoose(b, k) + lchoose(n-b, a-k) - lchoose(n, a))
}

func TestSampleMatchesHypergeometric(t *testing.T) {
	// For a 2x2 table the (0,0) cell under fixed marginals is exactly
	// hypergeometric. Chi-square goodness of fit over many draws.
	rng := rand.New(rand.NewSource(3))
	a, b, n := 12, 8, 30 // row0 total, col0 total, grand total
	s, err := NewSampler([]int{a, n - a}, []int{b, n - b})
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	dst, _ := NewTable2(2, 2)
	draws := 20000
	lo := a + b - n
	if lo < 0 {
		lo = 0
	}
	hi := a
	if b < hi {
		hi = b
	}
	obs := make([]int, hi-lo+1)
	for i := 0; i < draws; i++ {
		if err := s.Sample(rng, dst); err != nil {
			t.Fatalf("Sample: %v", err)
		}
		k := dst.At(0, 0)
		if k < lo || k > hi {
			t.Fatalf("cell %d outside support [%d,%d]", k, lo, hi)
		}
		obs[k-lo]++
	}
	chi2 := 0.0
	dfUsed := 0
	for k := lo; k <= hi; k++ {
		exp := hypergeometricPMF(k, a, b, n) * float64(draws)
		if exp < 5 {
			continue // skip sparse tail cells
		}
		d := float64(obs[k-lo]) - exp
		chi2 += d * d / exp
		dfUsed++
	}
	if dfUsed < 2 {
		t.Fatal("degenerate goodness-of-fit setup")
	}
	p, err := stats.ChiSquareSurvival(chi2, float64(dfUsed-1))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Errorf("Patefield draws do not match hypergeometric: chi2=%v df=%d p=%v", chi2, dfUsed-1, p)
	}
}

func TestSampleMeanMatchesExpectation(t *testing.T) {
	// E[cell(i,j)] = rowTotal_i * colTotal_j / n under the null.
	rng := rand.New(rand.NewSource(4))
	rows := []int{20, 30, 50}
	cols := []int{40, 60}
	s, err := NewSampler(rows, cols)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	dst, _ := NewTable2(3, 2)
	draws := 5000
	sum := make([]float64, 6)
	for d := 0; d < draws; d++ {
		if err := s.Sample(rng, dst); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				sum[i*2+j] += float64(dst.At(i, j))
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			mean := sum[i*2+j] / float64(draws)
			want := float64(rows[i]) * float64(cols[j]) / 100
			if math.Abs(mean-want) > 0.35 {
				t.Errorf("cell (%d,%d) mean = %v, want ≈%v", i, j, mean, want)
			}
		}
	}
}

func TestSampleDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Single row: table fully determined.
	s, err := NewSampler([]int{10}, []int{4, 6})
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	dst, _ := NewTable2(1, 2)
	if err := s.Sample(rng, dst); err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if dst.At(0, 0) != 4 || dst.At(0, 1) != 6 {
		t.Errorf("single-row table = [%d %d], want [4 6]", dst.At(0, 0), dst.At(0, 1))
	}
	// Single column.
	s, err = NewSampler([]int{3, 7}, []int{10})
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	dst, _ = NewTable2(2, 1)
	if err := s.Sample(rng, dst); err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if dst.At(0, 0) != 3 || dst.At(1, 0) != 7 {
		t.Errorf("single-col table = [%d %d], want [3 7]", dst.At(0, 0), dst.At(1, 0))
	}
	// Zero marginals inside the table are fine.
	s, err = NewSampler([]int{0, 10}, []int{10, 0})
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	dst, _ = NewTable2(2, 2)
	if err := s.Sample(rng, dst); err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if dst.At(1, 0) != 10 {
		t.Errorf("forced cell = %d, want 10", dst.At(1, 0))
	}
}

func TestCloneIndependence(t *testing.T) {
	tab, _ := NewTable2(2, 2)
	tab.Add(0, 0, 3)
	cl := tab.Clone()
	cl.Add(1, 1, 5)
	if tab.Total() != 3 {
		t.Errorf("clone mutation leaked into original: total = %d", tab.Total())
	}
	if cl.Total() != 8 {
		t.Errorf("clone total = %d, want 8", cl.Total())
	}
}

// Property: sampled tables always preserve marginals, for random shapes and
// random marginals.
func TestQuickSampleMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nr := 1 + r.Intn(5)
		nc := 1 + r.Intn(5)
		// Random cell counts define consistent marginals.
		base, _ := NewTable2(nr, nc)
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				base.Add(i, j, r.Intn(8))
			}
		}
		if base.Total() == 0 {
			base.Add(0, 0, 1)
		}
		s, err := NewSamplerFromTable(base)
		if err != nil {
			return false
		}
		dst, _ := NewTable2(nr, nc)
		for trial := 0; trial < 5; trial++ {
			if err := s.Sample(r, dst); err != nil {
				return false
			}
			if !reflect.DeepEqual(dst.RowTotals(), base.RowTotals()) {
				return false
			}
			if !reflect.DeepEqual(dst.ColTotals(), base.ColTotals()) {
				return false
			}
			for i := 0; i < nr*nc; i++ {
				if dst.counts[i] < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}
