package countcache

import (
	"context"
	"errors"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
	"hypdb/source/mem"
	"hypdb/source/sharded"
)

func shardedFixture(t *testing.T) *sharded.Relation {
	t.Helper()
	b := dataset.NewBuilder("G", "O")
	for _, r := range [][2]string{
		{"a", "0"}, {"a", "1"}, {"b", "0"}, {"b", "1"}, {"a", "0"}, {"b", "1"},
	} {
		b.MustAdd(r[0], r[1])
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sharded.Partition(tab, "D", 2)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func sum(m map[source.Key]int) int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

// TestDeltaApplicationKeepsCachePrimed is the delta-application contract:
// after an append, the next query must be served from the upgraded views —
// zero new backend fetches — and must include the appended rows.
func TestDeltaApplicationKeepsCachePrimed(t *testing.T) {
	ctx := context.Background()
	c := Wrap(shardedFixture(t), 0)

	if err := c.Prime(ctx, []string{"G", "O"}, 0); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Fetches != 1 {
		t.Fatalf("after prime: %+v, want 1 fetch", st)
	}

	res, err := c.Append(ctx, [][]string{{"a", "1"}, {"b", "0"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Appended != 2 {
		t.Fatalf("append result %+v, want version 2, 2 rows", res)
	}
	st := c.Stats()
	if st.DeltaApplied == 0 || st.DeltaDropped != 0 {
		t.Fatalf("after append: %+v, want the primed view delta-applied", st)
	}

	// The next query is answered by the upgraded view: no new fetch.
	before := c.Stats().Fetches
	counts, err := c.Counts(ctx, []string{"G", "O"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(counts); got != 8 {
		t.Fatalf("post-append counts sum to %d, want 8", got)
	}
	if after := c.Stats().Fetches; after != before {
		t.Fatalf("post-append query re-fetched (%d -> %d); want delta-served", before, after)
	}
	// Subset marginals derive from the upgraded view, still fetch-free.
	gOnly, err := c.Counts(ctx, []string{"G"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(gOnly); got != 8 {
		t.Fatalf("marginal sums to %d, want 8", got)
	}
	if after := c.Stats().Fetches; after != before {
		t.Fatalf("marginal re-fetched (%d -> %d)", before, after)
	}
	if n, err := c.NumRows(ctx); err != nil || n != 8 {
		t.Fatalf("NumRows = %d, %v, want 8", n, err)
	}
}

// TestDeltaApplicationGrowsDictionaries: an append introducing unseen
// labels re-strides the cached views to the grown cardinalities.
func TestDeltaApplicationGrowsDictionaries(t *testing.T) {
	ctx := context.Background()
	c := Wrap(shardedFixture(t), 0)
	if err := c.Prime(ctx, []string{"G", "O"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, [][]string{{"zzz", "1"}}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DeltaApplied == 0 {
		t.Fatalf("grown append not delta-applied: %+v", st)
	}
	before := c.Stats().Fetches
	dc, err := c.DenseCounts(ctx, []string{"G", "O"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Total != 7 || dc.Cards[0] != 3 {
		t.Fatalf("grown view total %d cards %v, want 7 and G-card 3", dc.Total, dc.Cards)
	}
	if after := c.Stats().Fetches; after != before {
		t.Fatal("grown view was re-fetched instead of delta-applied")
	}
}

// TestPinIsolatesInFlightReaders: a reader pinned before an append keeps
// observing its version for counts, dictionaries and row counts, while the
// live handle moves on.
func TestPinIsolatesInFlightReaders(t *testing.T) {
	ctx := context.Background()
	c := Wrap(shardedFixture(t), 0)
	if err := c.Prime(ctx, []string{"G", "O"}, 0); err != nil {
		t.Fatal(err)
	}

	pin := c.Pin()
	pinned, ok := pin.(*Pinned)
	if !ok {
		t.Fatalf("Pin over a versioned backend returned %T, want *Pinned", pin)
	}
	if pinned.Version() != 1 {
		t.Fatalf("pin version = %d, want 1", pinned.Version())
	}

	if _, err := c.Append(ctx, [][]string{{"c", "0"}, {"c", "1"}, {"c", "0"}}); err != nil {
		t.Fatal(err)
	}

	// The pin still answers from version 1: 6 rows, two G labels.
	m, err := pin.Counts(ctx, []string{"G"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(m); got != 6 {
		t.Fatalf("pinned counts sum to %d, want 6", got)
	}
	if l, _ := pin.Labels(ctx, "G"); len(l) != 2 {
		t.Fatalf("pinned dict = %v, want 2 labels", l)
	}
	if n, _ := pin.NumRows(ctx); n != 6 {
		t.Fatalf("pinned rows = %d, want 6", n)
	}
	// Restriction through the pin stays in the pinned epoch.
	view, err := pin.Restrict(ctx, dataset.Eq{Attr: "O", Value: "1"})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := view.Counts(ctx, []string{"G"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(rm); got != 3 {
		t.Fatalf("pinned restricted counts sum to %d, want 3", got)
	}

	// Meanwhile a fresh pin sees the new epoch.
	m2, err := c.Pin().Counts(ctx, []string{"G"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(m2); got != 9 {
		t.Fatalf("live counts sum to %d, want 9", got)
	}

	// An immutable backend pins to the shared cache itself.
	mc := Wrap(mem.New(mustTable(t)), 0)
	if mc.Pin() != source.Relation(mc) {
		t.Error("Pin over an immutable backend should return the cache")
	}
}

func mustTable(t *testing.T) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("A")
	b.MustAdd("x")
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestAppendThroughImmutableBackend: appends against non-growing backends
// fail loudly with the sentinel.
func TestAppendThroughImmutableBackend(t *testing.T) {
	c := Wrap(mem.New(mustTable(t)), 0)
	if _, err := c.Append(context.Background(), [][]string{{"y"}}); !errors.Is(err, hyperr.ErrNotAppendable) {
		t.Fatalf("append on mem backend: err = %v, want ErrNotAppendable", err)
	}
}
