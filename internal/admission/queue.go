package admission

import (
	"context"
	"errors"
	"sync"
	"time"
)

// QueueConfig tunes a Queue.
type QueueConfig struct {
	// Capacity is the number of concurrently held execution slots.
	// Values < 1 are raised to 1.
	Capacity int
	// MaxQueued bounds how many requests may wait for slots; a request
	// arriving with the queue full is shed with QueueFull. Zero means
	// 4×Capacity; negative means unbounded.
	MaxQueued int
	// Clock overrides time.Now for tests; nil uses time.Now.
	Clock func() time.Time
}

// QueueStats is a point-in-time snapshot of a queue's counters.
type QueueStats struct {
	// Admitted counts requests granted their slots (they may still be
	// running); Queued is the number currently waiting.
	Admitted int64
	Queued   int
	// ShedFull / ShedDeadline / ShedDraining count rejections by reason;
	// Cancelled counts waiters whose own context ended while queued
	// (client went away — not a shed).
	ShedFull     int64
	ShedDeadline int64
	ShedDraining int64
	Cancelled    int64
}

// Queue is a weighted fair scheduler over a bounded slot capacity with a
// bounded wait queue. See the package comment for the model; the key
// properties are
//
//   - per-client weighted fairness: grants are ordered by virtual finish
//     time (slots/weight accumulated per client), so a client submitting
//     a burst queues behind other clients' later arrivals;
//   - FIFO multi-slot reservations: once a reservation is first in
//     virtual order, freed slots accumulate for it exclusively — singles
//     cannot barge past it;
//   - deadline-aware admission: a context deadline that cannot be met
//     given the backlog estimate is rejected at once, and one that
//     expires while queued is shed with a typed Rejection.
type Queue struct {
	capacity  int
	maxQueued int
	clock     func() time.Time

	mu      sync.Mutex
	free    int
	vtime   float64
	seq     uint64
	clients map[string]*clientState
	heads   int // requests currently queued (all clients)
	closed  bool

	// ewma tracks slot-hold time (per released acquisition) in
	// nanoseconds, feeding wait estimates and Retry-After hints.
	ewma float64

	stats QueueStats
}

type clientState struct {
	id    string
	vlast float64
	fifo  []*waiter
}

type waiter struct {
	c       *clientState
	n       int // slots requested
	granted int // slots reserved so far
	seq     uint64
	vstart  float64
	vfinish float64
	ready   chan struct{} // closed on full grant or shed; err says which
	err     error
}

// NewQueue creates a Queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.MaxQueued == 0 {
		cfg.MaxQueued = 4 * cfg.Capacity
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Queue{
		capacity:  cfg.Capacity,
		maxQueued: cfg.MaxQueued,
		clock:     cfg.Clock,
		free:      cfg.Capacity,
		clients:   make(map[string]*clientState),
	}
}

// Capacity returns the queue's slot capacity.
func (q *Queue) Capacity() int { return q.capacity }

// Stats snapshots the queue's counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.stats
	st.Queued = q.heads
	return st
}

// Acquire blocks until n slots are granted to client (weight > 0 scales
// its fair share; 1 is the default tenant weight) or admission fails. On
// success the returned release function must be called exactly once to
// return the slots. Failures are either a *Rejection (shed: queue full,
// unmeetable or expired deadline, draining) or the context's own
// cancellation error when the caller went away.
func (q *Queue) Acquire(ctx context.Context, client string, weight float64, n int) (release func(), err error) {
	return q.acquire(ctx, client, weight, n, false)
}

// Drain acquires the queue's full capacity for a teardown path — deleting
// a dataset waits for its in-flight work this way. It bypasses the queue
// depth bound and the deadline estimate (a teardown must not be shed for
// being slow), but still loses to Close and to its context.
func (q *Queue) Drain(ctx context.Context) (release func(), err error) {
	return q.acquire(ctx, "\x00drain", 1, q.capacity, true)
}

func (q *Queue) acquire(ctx context.Context, client string, weight float64, n int, bypass bool) (release func(), err error) {
	if n < 1 {
		n = 1
	}
	if n > q.capacity {
		n = q.capacity
	}
	if weight <= 0 {
		weight = 1
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	q.mu.Lock()
	if q.closed {
		q.stats.ShedDraining++
		ra := q.retryAfterLocked(n)
		q.mu.Unlock()
		return nil, &Rejection{Reason: Draining, RetryAfter: ra}
	}
	// Deadline propagation: estimate how long this request would wait
	// behind the backlog; if its deadline lands before that, shedding now
	// beats occupying a queue slot it can never use.
	if dl, ok := ctx.Deadline(); ok && !bypass {
		if wait := q.estimateWaitLocked(n); wait > 0 && q.clock().Add(wait).After(dl) {
			q.stats.ShedDeadline++
			q.mu.Unlock()
			return nil, &Rejection{Reason: DeadlineUnmeetable, RetryAfter: clampRetry(wait)}
		}
	}
	canStartNow := q.heads == 0 && q.free >= n
	if !canStartNow && !bypass && q.maxQueued > 0 && q.heads >= q.maxQueued {
		q.stats.ShedFull++
		ra := q.retryAfterLocked(n)
		q.mu.Unlock()
		return nil, &Rejection{Reason: QueueFull, RetryAfter: ra}
	}

	c := q.clients[client]
	if c == nil {
		c = &clientState{id: client}
		q.clients[client] = c
	}
	q.seq++
	w := &waiter{c: c, n: n, seq: q.seq, ready: make(chan struct{})}
	w.vstart = max(q.vtime, c.vlast)
	w.vfinish = w.vstart + float64(n)/weight
	c.vlast = w.vfinish
	c.fifo = append(c.fifo, w)
	q.heads++
	q.dispatchLocked()
	granted := w.granted == w.n
	q.mu.Unlock()

	if granted {
		return q.releaseFn(w), nil
	}
	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		return q.releaseFn(w), nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-w.ready:
			// Lost the race: the grant (or a shed) landed first. Honor it.
			q.mu.Unlock()
			if w.err != nil {
				return nil, w.err
			}
			return q.releaseFn(w), nil
		default:
		}
		q.removeLocked(w)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The deadline expired while queued: a shed, not a hang — the
			// caller gets a typed rejection with a retry hint instead of a
			// bare timeout.
			q.stats.ShedDeadline++
			ra := q.retryAfterLocked(n)
			q.mu.Unlock()
			return nil, &Rejection{Reason: DeadlineUnmeetable, RetryAfter: ra}
		}
		q.stats.Cancelled++
		q.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Close sheds every queued waiter with a Draining rejection and makes all
// future Acquires fail the same way. Slots already granted stay granted —
// admitted work finishes; its releases are still accepted. Safe to call
// more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for _, c := range q.clients {
		for _, w := range c.fifo {
			q.free += w.granted // refund partial reservations
			w.granted = 0
			w.err = &Rejection{Reason: Draining, RetryAfter: clampRetry(q.holdEstimateLocked())}
			q.stats.ShedDraining++
			close(w.ready)
		}
		c.fifo = nil
	}
	q.heads = 0
}

// dispatchLocked grants free slots strictly in (virtual start time,
// arrival) order: the eligible head with the smallest vstart — ties
// broken by arrival sequence, so earlier requests win — receives every
// freed slot until its reservation completes; only then may the next
// waiter be served. Start-time ordering with FIFO ties is what makes
// multi-slot reservations FIFO against later singles: a later arrival's
// vstart is at least the virtual time the reservation enqueued at, so it
// can tie but never undercut. Virtual time advances by served work
// (the granted waiter's vfinish), which bounds how far a backlogged
// client's requests can be overtaken by a stream of fresh clients.
func (q *Queue) dispatchLocked() {
	for q.free > 0 {
		w := q.minHeadLocked()
		if w == nil {
			return
		}
		take := w.n - w.granted
		if take > q.free {
			take = q.free
		}
		w.granted += take
		q.free -= take
		if w.granted < w.n {
			return // reservation holds what it has; nobody overtakes it
		}
		q.popLocked(w)
		q.stats.Admitted++
		if w.vfinish > q.vtime {
			q.vtime = w.vfinish
		}
		close(w.ready)
	}
}

// minHeadLocked returns the queued head waiter with the smallest virtual
// start time (arrival order breaks ties), nil when nothing is queued.
func (q *Queue) minHeadLocked() *waiter {
	var best *waiter
	for _, c := range q.clients {
		if len(c.fifo) == 0 {
			continue
		}
		if h := c.fifo[0]; best == nil || h.vstart < best.vstart ||
			(h.vstart == best.vstart && h.seq < best.seq) {
			best = h
		}
	}
	return best
}

// popLocked removes a granted or shed head from its client's FIFO.
func (q *Queue) popLocked(w *waiter) {
	c := w.c
	for i, cand := range c.fifo {
		if cand == w {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
			break
		}
	}
	q.heads--
	if len(c.fifo) == 0 {
		// Forget idle clients so the map stays bounded; a returning client
		// restarts at the current virtual time, which is the standard
		// fair-queueing treatment of an idle period.
		delete(q.clients, c.id)
	}
}

// removeLocked withdraws a still-queued waiter (caller cancelled),
// refunding any partially reserved slots and redispatching.
func (q *Queue) removeLocked(w *waiter) {
	q.free += w.granted
	w.granted = 0
	q.popLocked(w)
	q.dispatchLocked()
}

// releaseFn returns the idempotent slot-release closure for a granted
// waiter, folding the observed hold time into the service-time EWMA.
func (q *Queue) releaseFn(w *waiter) func() {
	start := q.clock()
	var once sync.Once
	return func() {
		once.Do(func() {
			held := q.clock().Sub(start)
			q.mu.Lock()
			q.free += w.n
			const alpha = 0.2
			if q.ewma == 0 {
				q.ewma = float64(held)
			} else {
				q.ewma = alpha*float64(held) + (1-alpha)*q.ewma
			}
			q.dispatchLocked()
			q.mu.Unlock()
		})
	}
}

// estimateWaitLocked estimates how long a new n-slot request would wait:
// the slots busy plus queued ahead of it, drained in capacity-sized waves
// of the average hold time. Zero when the queue has no service-time
// history yet — admission stays permissive until evidence accumulates.
func (q *Queue) estimateWaitLocked(n int) time.Duration {
	if q.ewma == 0 {
		return 0
	}
	ahead := q.capacity - q.free
	for _, c := range q.clients {
		for _, w := range c.fifo {
			ahead += w.n - w.granted
		}
	}
	if ahead == 0 {
		return 0
	}
	waves := float64(ahead+n-1) / float64(q.capacity)
	return time.Duration(waves * q.ewma)
}

// holdEstimateLocked is the average slot-hold time, defaulting to one
// second before any history exists.
func (q *Queue) holdEstimateLocked() time.Duration {
	if q.ewma == 0 {
		return time.Second
	}
	return time.Duration(q.ewma)
}

// retryAfterLocked is the Retry-After hint for a rejection of an n-slot
// request: the backlog drain estimate, clamped to [1s, 60s].
func (q *Queue) retryAfterLocked(n int) time.Duration {
	wait := q.estimateWaitLocked(n)
	if wait == 0 {
		wait = q.holdEstimateLocked()
	}
	return clampRetry(wait)
}

// clampRetry bounds a Retry-After hint to [1s, 60s]: sub-second hints
// round to a useless "0" header, and anything past a minute just tells
// clients to give up.
func clampRetry(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	if d > time.Minute {
		return time.Minute
	}
	return d
}
