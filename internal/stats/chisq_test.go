package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Reference values from standard chi-squared tables.
	cases := []struct {
		x, df, want, tol float64
	}{
		{3.841, 1, 0.05, 2e-4},
		{6.635, 1, 0.01, 2e-4},
		{5.991, 2, 0.05, 2e-4},
		{9.210, 2, 0.01, 2e-4},
		{7.815, 3, 0.05, 2e-4},
		{18.307, 10, 0.05, 2e-4},
		{0, 5, 1, 1e-12},
		{2, 2, math.Exp(-1), 1e-9}, // χ²_2 survival = e^{-x/2}
	}
	for _, tc := range cases {
		got, err := ChiSquareSurvival(tc.x, tc.df)
		if err != nil {
			t.Fatalf("ChiSquareSurvival(%v,%v): %v", tc.x, tc.df, err)
		}
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("ChiSquareSurvival(%v,%v) = %v, want %v±%v", tc.x, tc.df, got, tc.want, tc.tol)
		}
	}
}

func TestChiSquareSurvivalDF2Exact(t *testing.T) {
	// df=2 has the closed form e^{-x/2}; check across a range including the
	// series/continued-fraction switch point.
	for _, x := range []float64{0.1, 0.5, 1, 2, 2.9, 3.1, 5, 10, 50} {
		got, err := ChiSquareSurvival(x, 2)
		if err != nil {
			t.Fatalf("x=%v: %v", x, err)
		}
		want := math.Exp(-x / 2)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("x=%v: got %v, want %v", x, got, want)
		}
	}
}

func TestChiSquareCDFComplement(t *testing.T) {
	for _, x := range []float64{0.5, 2, 7, 20} {
		for _, df := range []float64{1, 3, 8} {
			cdf, err1 := ChiSquareCDF(x, df)
			surv, err2 := ChiSquareSurvival(x, df)
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: %v %v", err1, err2)
			}
			if math.Abs(cdf+surv-1) > 1e-12 {
				t.Errorf("CDF+survival = %v, want 1", cdf+surv)
			}
		}
	}
}

func TestChiSquareInvalidDF(t *testing.T) {
	if _, err := ChiSquareSurvival(1, 0); err == nil {
		t.Error("df=0 accepted")
	}
	if _, err := ChiSquareSurvival(1, -2); err == nil {
		t.Error("df<0 accepted")
	}
}

func TestGTestPValue(t *testing.T) {
	// Zero MI ⇒ G = 0 ⇒ p = 1.
	p, err := GTestPValue(0, 100, 1)
	if err != nil {
		t.Fatalf("GTestPValue: %v", err)
	}
	if p != 1 {
		t.Errorf("p(MI=0) = %v, want 1", p)
	}
	// Strong dependence on many samples ⇒ tiny p.
	p, err = GTestPValue(0.3, 10000, 1)
	if err != nil {
		t.Fatalf("GTestPValue: %v", err)
	}
	if p > 1e-10 {
		t.Errorf("p(strong dependence) = %v, want ≈0", p)
	}
	// Negative MI (Miller-Madow artifact) clamps to p = 1.
	p, err = GTestPValue(-0.01, 100, 2)
	if err != nil {
		t.Fatalf("GTestPValue: %v", err)
	}
	if p != 1 {
		t.Errorf("p(negative MI) = %v, want 1", p)
	}
	// Degenerate df ⇒ p = 1, not an error.
	p, err = GTestPValue(0.2, 100, 0)
	if err != nil || p != 1 {
		t.Errorf("p(df=0) = %v err=%v, want 1,nil", p, err)
	}
	if _, err := GTestPValue(0.1, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestGTestCalibration(t *testing.T) {
	// Under the null (independent binary X,Y), p-values should be roughly
	// uniform: the rejection rate at α=0.05 over many trials must be near 5%.
	rng := rand.New(rand.NewSource(99))
	trials := 2000
	n := 500
	rejected := 0
	for tr := 0; tr < trials; tr++ {
		x := make([]int32, n)
		y := make([]int32, n)
		for i := range x {
			x[i] = int32(rng.Intn(2))
			y[i] = int32(rng.Intn(2))
		}
		mi, err := MutualInformationCodes(x, y, 2, 2, PlugIn)
		if err != nil {
			t.Fatal(err)
		}
		p, err := GTestPValue(mi, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / float64(trials)
	if rate < 0.02 || rate > 0.09 {
		t.Errorf("null rejection rate = %v, want ≈0.05", rate)
	}
}

func TestBinomialCI(t *testing.T) {
	if w := BinomialCI(0.5, 100); math.Abs(w-1.96*0.05) > 1e-12 {
		t.Errorf("CI(0.5,100) = %v, want %v", w, 1.96*0.05)
	}
	if w := BinomialCI(0, 100); w != 0 {
		t.Errorf("CI(0,100) = %v, want 0", w)
	}
	if w := BinomialCI(0.5, 0); w != 0 {
		t.Errorf("CI(.5,0) = %v, want 0", w)
	}
	if w := BinomialCI(-1, 10); w != 0 {
		t.Errorf("CI(-1,10) = %v, want 0 (clamped)", w)
	}
}

func TestLinearRegression(t *testing.T) {
	// Exact line y = 2 + 3x.
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 8, 11, 14}
	a, b, r2, err := LinearRegression(x, y)
	if err != nil {
		t.Fatalf("LinearRegression: %v", err)
	}
	if math.Abs(a-2) > 1e-9 || math.Abs(b-3) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = (%v,%v,R²=%v), want (2,3,1)", a, b, r2)
	}
	// Constant y: slope 0, R² defined as 1.
	_, b, r2, err = LinearRegression(x, []float64{7, 7, 7, 7})
	if err != nil {
		t.Fatalf("LinearRegression: %v", err)
	}
	if b != 0 || r2 != 1 {
		t.Errorf("constant fit = (b=%v,R²=%v), want (0,1)", b, r2)
	}
	if _, _, _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinearRegression([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("constant x accepted")
	}
}

func TestMeanVariance(t *testing.T) {
	m, v := MeanVariance([]float64{1, 2, 3, 4})
	if m != 2.5 || math.Abs(v-1.25) > 1e-12 {
		t.Errorf("MeanVariance = (%v,%v), want (2.5,1.25)", m, v)
	}
	m, v = MeanVariance(nil)
	if m != 0 || v != 0 {
		t.Errorf("MeanVariance(nil) = (%v,%v), want zeros", m, v)
	}
}

// Property: survival is monotone decreasing in x and lies in [0,1].
func TestQuickChiSquareMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		df := float64(1 + r.Intn(20))
		x1 := r.Float64() * 30
		x2 := x1 + r.Float64()*10
		p1, err1 := ChiSquareSurvival(x1, df)
		p2, err2 := ChiSquareSurvival(x2, df)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 >= p2-1e-12 && p1 >= 0 && p1 <= 1 && p2 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareLargeDF(t *testing.T) {
	// Huge degrees of freedom (high-cardinality attributes) exercise the
	// slow-converging x ≈ a regime of the incomplete gamma series.
	for _, tc := range []struct{ x, df float64 }{
		{7940.4, 8100}, {8100, 8100}, {8500, 8100}, {1e6, 1e6},
	} {
		p, err := ChiSquareSurvival(tc.x, tc.df)
		if err != nil {
			t.Fatalf("ChiSquareSurvival(%v,%v): %v", tc.x, tc.df, err)
		}
		if p < 0 || p > 1 {
			t.Errorf("p(%v,%v) = %v outside [0,1]", tc.x, tc.df, p)
		}
	}
	// Sanity: at x = df the survival is near 0.5 for large df.
	p, err := ChiSquareSurvival(10000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 0.02 {
		t.Errorf("survival at the mean = %v, want ≈0.5", p)
	}
}
