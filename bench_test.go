package hypdb_test

// One benchmark per table/figure of the paper's evaluation (Sec 7). These
// measure the code paths behind each experiment at bench-friendly sizes;
// cmd/experiments regenerates the full paper-style rows and sweeps.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"hypdb"
	"hypdb/internal/cdd"
	"hypdb/internal/core"
	"hypdb/internal/countcache"
	"hypdb/internal/cube"
	"hypdb/internal/datagen"
	"hypdb/internal/dataset"
	"hypdb/internal/independence"
	"hypdb/internal/memsql"
	"hypdb/internal/query"
	"hypdb/internal/stats"
	"hypdb/source/mem"
	"hypdb/source/sharded"
	"hypdb/source/sqldb"
)

// fixtures caches generated datasets across benchmarks.
var fixtures sync.Map

func fixture(b *testing.B, key string, gen func() (*dataset.Table, error)) *dataset.Table {
	b.Helper()
	if v, ok := fixtures.Load(key); ok {
		return v.(*dataset.Table)
	}
	tab, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	fixtures.Store(key, tab)
	return tab
}

func flightSmall(b *testing.B) *dataset.Table {
	return fixture(b, "flight", func() (*dataset.Table, error) { return datagen.Flight(12000, 1) })
}

func randomTable(b *testing.B, rows int) *dataset.Table {
	return fixture(b, fmt.Sprintf("random-%d", rows), func() (*dataset.Table, error) {
		tab, _, err := datagen.Random(datagen.RandomSpec{
			Nodes: 8, AvgDegree: 2.5, MinCard: 2, MaxCard: 4, Alpha: 0.35, Rows: rows, Seed: 21,
		})
		return tab, err
	})
}

func benchAnalyze(b *testing.B, tab *dataset.Table, q query.Query) {
	b.Helper()
	opts := core.Options{Config: core.Config{Seed: 7, Permutations: 200, Parallel: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(context.Background(), mem.New(tab), q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 1 / Table 1: end-to-end analysis per dataset

func BenchmarkFig1FlightAnalysis(b *testing.B) {
	benchAnalyze(b, flightSmall(b), datagen.FlightQuery())
}

func BenchmarkTable1Adult(b *testing.B) {
	tab := fixture(b, "adult", func() (*dataset.Table, error) { return datagen.Adult(12000, 1) })
	benchAnalyze(b, tab, datagen.AdultQuery())
}

func BenchmarkTable1Staples(b *testing.B) {
	tab := fixture(b, "staples", func() (*dataset.Table, error) { return datagen.Staples(50000, 1) })
	benchAnalyze(b, tab, datagen.StaplesQuery())
}

func BenchmarkTable1Berkeley(b *testing.B) {
	tab := fixture(b, "berkeley", func() (*dataset.Table, error) { return datagen.Berkeley(1) })
	benchAnalyze(b, tab, datagen.BerkeleyQuery())
}

func BenchmarkTable1Cancer(b *testing.B) {
	tab := fixture(b, "cancer", func() (*dataset.Table, error) { return datagen.Cancer(datagen.CancerRows, 1) })
	benchAnalyze(b, tab, datagen.CancerQuery())
}

func BenchmarkTable1Flight(b *testing.B) {
	benchAnalyze(b, flightSmall(b), datagen.FlightQuery())
}

// ---------------------------------------------------------------------------
// Session-handle caching: the cross-query covariate-discovery memo

// BenchmarkAnalyzeWarmVsCold quantifies the session cache: "cold" opens a
// fresh handle per query (every call rediscovers covariates, like the
// deprecated free functions), "warm" reuses one handle so repeated queries
// skip the CD phase entirely.
func BenchmarkAnalyzeWarmVsCold(b *testing.B) {
	tab := flightSmall(b)
	q := datagen.FlightQuery()
	opts := []hypdb.Option{hypdb.WithSeed(7), hypdb.WithPermutations(200), hypdb.WithParallel(true)}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hypdb.Open(tab).Analyze(ctx, q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		db := hypdb.Open(tab)
		if _, err := db.Analyze(ctx, q, opts...); err != nil { // prime the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Analyze(ctx, q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Fig 3 / Fig 4: the end-to-end report pipelines (same code path as Table 1
// on the respective datasets; kept as named benches for the experiment index)

func BenchmarkFig3AdultReport(b *testing.B) { BenchmarkTable1Adult(b) }

func BenchmarkFig4CancerReport(b *testing.B) { BenchmarkTable1Cancer(b) }

// ---------------------------------------------------------------------------
// Fig 5(a): random query rewriting

func BenchmarkFig5aRandomQueries(b *testing.B) {
	tab := flightSmall(b)
	q := datagen.FlightQuery()
	cov := datagen.FlightCovariates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Run(context.Background(), mem.New(tab), q); err != nil {
			b.Fatal(err)
		}
		if _, err := query.RewriteTotal(context.Background(), mem.New(tab), q, cov); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 5(b,c,d): parent recovery

func benchParentRecovery(b *testing.B, rows int, method core.TestMethod) {
	tab := randomTable(b, rows)
	attrs := tab.Columns()
	cfg := core.Config{Method: method, Seed: 7, DisableFallback: true, Permutations: 100, Parallel: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range attrs {
			if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), a, excludeOf(attrs, a), nil, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig5bQualitySweepCD(b *testing.B) {
	benchParentRecovery(b, 10000, core.HyMITMethod)
}

func BenchmarkFig5cDeepNodesCD(b *testing.B) {
	benchParentRecovery(b, 10000, core.ChiSquaredMethod)
}

func BenchmarkFig5dSparseCategoriesCD(b *testing.B) {
	tab := fixture(b, "random-sparse", func() (*dataset.Table, error) {
		t, _, err := datagen.Random(datagen.RandomSpec{
			Nodes: 8, AvgDegree: 2.5, MinCard: 10, MaxCard: 10, Alpha: 0.35, Rows: 10000, Seed: 11,
		})
		return t, err
	})
	attrs := tab.Columns()
	cfg := core.Config{Method: core.HyMITMethod, Seed: 7, DisableFallback: true, Permutations: 100, Parallel: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), attrs[0], attrs[1:], nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 6(a): test counting — FGS structure learning vs CD

func BenchmarkFig6aFGSStructure(b *testing.B) {
	tab := randomTable(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cdd.LearnStructure(context.Background(), mem.New(tab), tab.Columns(), cdd.ConstraintConfig{
			Tester: independence.ChiSquare{Est: stats.MillerMadow},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aCDSingleNode(b *testing.B) {
	tab := randomTable(b, 10000)
	attrs := tab.Columns()
	cfg := core.Config{Method: core.ChiSquaredMethod, Seed: 7, DisableFallback: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), attrs[0], attrs[1:], nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 6(b): single-test runtime per method

func benchSingleTest(b *testing.B, tester independence.Tester) {
	tab := fixture(b, "random-wide", func() (*dataset.Table, error) {
		t, _, err := datagen.Random(datagen.RandomSpec{
			Nodes: 8, AvgDegree: 2.5, MinCard: 3, MaxCard: 6, Alpha: 0.35, Rows: 20000, Seed: 21,
		})
		return t, err
	})
	attrs := tab.Columns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tester.Test(context.Background(), mem.New(tab), attrs[0], attrs[1], attrs[2:6]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6bMIT(b *testing.B) {
	benchSingleTest(b, independence.MIT{Permutations: 500, Seed: 1, Est: stats.PlugIn, Parallel: true})
}

func BenchmarkFig6bMITSampling(b *testing.B) {
	benchSingleTest(b, independence.MIT{Permutations: 500, Seed: 1, Est: stats.PlugIn, SampleGroups: true, Parallel: true})
}

func BenchmarkFig6bHyMIT(b *testing.B) {
	benchSingleTest(b, independence.HyMIT{Permutations: 500, Seed: 1, Est: stats.MillerMadow, Parallel: true})
}

func BenchmarkFig6bChiSquare(b *testing.B) {
	benchSingleTest(b, independence.ChiSquare{Est: stats.MillerMadow})
}

func BenchmarkFig6bNaiveShuffle(b *testing.B) {
	benchSingleTest(b, independence.Shuffle{Permutations: 100, Seed: 1, Est: stats.PlugIn})
}

// ---------------------------------------------------------------------------
// Fig 6(c): caching/materialization ablation on CD

func benchCDVariant(b *testing.B, mut func(*core.Config)) {
	tab := randomTable(b, 50000)
	attrs := tab.Columns()
	cfg := core.Config{Method: core.ChiSquaredMethod, Seed: 7, DisableFallback: true}
	mut(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), attrs[0], attrs[1:], nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6cCDNoOptimizations(b *testing.B) {
	benchCDVariant(b, func(c *core.Config) { c.DisableEntropyCache = true; c.DisableMaterialization = true })
}

func BenchmarkFig6cCDMaterializationOnly(b *testing.B) {
	benchCDVariant(b, func(c *core.Config) { c.DisableEntropyCache = true })
}

func BenchmarkFig6cCDCachingOnly(b *testing.B) {
	benchCDVariant(b, func(c *core.Config) { c.DisableMaterialization = true })
}

func BenchmarkFig6cCDBothOptimizations(b *testing.B) {
	benchCDVariant(b, func(c *core.Config) {})
}

// ---------------------------------------------------------------------------
// Fig 6(d) / Fig 8(b): cube benefit

func binaryTable(b *testing.B, nodes, rows int) *dataset.Table {
	return fixture(b, fmt.Sprintf("binary-%d-%d", nodes, rows), func() (*dataset.Table, error) {
		t, _, err := datagen.Random(datagen.RandomSpec{
			Nodes: nodes, AvgDegree: 2.5, MinCard: 2, MaxCard: 2, Alpha: 0.35, Rows: rows, Seed: 21,
		})
		return t, err
	})
}

func BenchmarkFig6dCDWithoutCube(b *testing.B) {
	tab := binaryTable(b, 8, 100000)
	attrs := tab.Columns()
	cfg := core.Config{Method: core.ChiSquaredMethod, Seed: 7, DisableFallback: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), attrs[0], attrs[1:], nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6dCDWithCube(b *testing.B) {
	tab := binaryTable(b, 8, 100000)
	attrs := tab.Columns()
	cb, err := cube.Build(tab, attrs)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Method: core.ChiSquaredMethod, Seed: 7, DisableFallback: true, Cube: cb}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), attrs[0], attrs[1:], nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8bCubeBuild12Attrs(b *testing.B) {
	tab := binaryTable(b, 12, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Build(tab, tab.Columns()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8bCDWithCube12Attrs(b *testing.B) {
	tab := binaryTable(b, 12, 50000)
	attrs := tab.Columns()
	cb, err := cube.Build(tab, attrs)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Method: core.ChiSquaredMethod, Seed: 7, DisableFallback: true, Cube: cb}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), attrs[0], attrs[1:], nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 8(a): accuracy — measured as verdict throughput here; the F1 series
// comes from cmd/experiments fig8a

func BenchmarkFig8aHyMITVerdicts(b *testing.B) {
	tab := fixture(b, "random-sparse8a", func() (*dataset.Table, error) {
		t, _, err := datagen.Random(datagen.RandomSpec{
			Nodes: 6, AvgDegree: 2.5, MinCard: 3, MaxCard: 6, Alpha: 0.35, Rows: 15000, Seed: 31,
		})
		return t, err
	})
	attrs := tab.Columns()
	tester := independence.HyMIT{Permutations: 200, Seed: 1, Est: stats.MillerMadow, Parallel: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 1; j < len(attrs); j++ {
			if _, err := tester.Test(context.Background(), mem.New(tab), attrs[0], attrs[j], nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Listing 2/3: rewriting itself (execution + SQL rendering)

func BenchmarkListing2RewriteExecution(b *testing.B) {
	tab := flightSmall(b)
	q := datagen.FlightQuery()
	cov := datagen.FlightCovariates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.RewriteTotal(context.Background(), mem.New(tab), q, cov); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListing3SQLRendering(b *testing.B) {
	q := datagen.FlightQuery()
	cov := datagen.FlightCovariates()
	for i := 0; i < b.N; i++ {
		_ = q.RewrittenSQL(cov)
	}
}

// ---------------------------------------------------------------------------
// Storage backends: in-memory vs SQL count pushdown
//
// BenchmarkCountsMemVsSQL tracks the overhead of the sqldb backend (served
// by the in-process memsql driver, so the numbers isolate the backend stack
// from network and DBMS costs) against the mem backend on the two paths the
// engine leans on: the dictionary-coded group-by count a contingency table
// is built from, and one cold end-to-end Analyze.

func BenchmarkCountsMemVsSQL(b *testing.B) {
	tab := flightSmall(b)
	q := datagen.FlightQuery()
	countAttrs := []string{"Airport", "Carrier", "Delayed"}
	memsql.Register("bench_flight", tab)
	b.Cleanup(func() { memsql.Unregister("bench_flight") })

	openSQLRel := func(b *testing.B) *sqldb.Relation {
		b.Helper()
		conn, err := memsql.Open("")
		if err != nil {
			b.Fatal(err)
		}
		rel, err := sqldb.Open(context.Background(), conn, "bench_flight")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { rel.Close() })
		return rel
	}

	// Contingency-table input: one group-by count over (Z, X, Y). A fresh
	// handle per iteration defeats the per-handle count cache, so the cost
	// measured is the backend round trip, not the memo.
	b.Run("counts/mem", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rel := mem.New(tab)
			if _, err := rel.Counts(context.Background(), countAttrs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Dense form: the contingency-table consumers (MIT group tables, the
	// entropy providers) read this flat tabulation directly, skipping the
	// sparse map entirely.
	b.Run("counts/mem-dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rel := mem.New(tab)
			dc, err := rel.DenseCounts(context.Background(), countAttrs, nil, 0)
			if err != nil {
				b.Fatal(err)
			}
			if dc == nil {
				b.Fatal("dense tabulation over budget")
			}
		}
	})
	b.Run("counts/sqldb", func(b *testing.B) {
		b.ReportAllocs()
		conn, err := memsql.Open("")
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		for i := 0; i < b.N; i++ {
			rel, err := sqldb.Open(context.Background(), conn, "bench_flight")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rel.Counts(context.Background(), countAttrs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Cold end-to-end Analyze per backend (fresh session handle each
	// iteration, so covariate discovery runs every time).
	opts := []hypdb.Option{hypdb.WithSeed(7), hypdb.WithPermutations(100), hypdb.WithParallel(true)}
	b.Run("analyze/mem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hypdb.Open(tab).Analyze(context.Background(), q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analyze/sqldb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel := openSQLRel(b)
			if _, err := hypdb.OpenSource(rel).Analyze(context.Background(), q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func excludeOf(items []string, drop string) []string {
	out := make([]string, 0, len(items))
	for _, x := range items {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}

// BenchmarkShardedCounts measures the partition-parallel count fan-out on
// the Fig 6 CD workload's dominant query — one dense group-by over the
// full attribute closure of the 50k-row random table — as the shard count
// grows. shards=1 is the degenerate baseline (fan-out machinery, no
// parallelism); the mem backend's single-pass tabulation is the reference.
func BenchmarkShardedCounts(b *testing.B) {
	tab := randomTable(b, 50000)
	attrs := tab.Columns()
	b.Run("mem", func(b *testing.B) {
		rel := mem.New(tab)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rel.DenseCounts(context.Background(), attrs, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			rel, err := sharded.Partition(tab, "bench_sharded", n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rel.DenseCounts(context.Background(), attrs, nil, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedAppendVsReload contrasts streaming ingestion with the
// naive alternative. "append" streams a 1000-row batch into a primed
// 4-shard session and re-runs the closure count: the count cache patches
// its views with the batch's delta counts. "reload" rebuilds the sharded
// relation and re-primes from scratch — what every new batch would cost
// without versioned snapshots and delta application.
func BenchmarkShardedAppendVsReload(b *testing.B) {
	tab := randomTable(b, 50000)
	attrs := tab.Columns()
	const batch = 1000
	rows := make([][]string, batch)
	for i := range rows {
		row := make([]string, len(attrs))
		for j, a := range attrs {
			c, err := tab.Column(a)
			if err != nil {
				b.Fatal(err)
			}
			row[j] = c.Value(i)
		}
		rows[i] = row
	}

	b.Run("append", func(b *testing.B) {
		rel, err := sharded.Partition(tab, "bench_append", 4)
		if err != nil {
			b.Fatal(err)
		}
		cc := countcache.Wrap(rel, 0)
		if err := cc.Prime(context.Background(), attrs, 0); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cc.Append(context.Background(), rows); err != nil {
				b.Fatal(err)
			}
			if _, err := cc.Counts(context.Background(), attrs, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := cc.Stats(); st.Fetches != 1 {
			b.Fatalf("append path fetched the backend %d times, want 1 (the prime)", st.Fetches)
		}
	})
	b.Run("reload", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rel, err := sharded.Partition(tab, "bench_reload", 4)
			if err != nil {
				b.Fatal(err)
			}
			cc := countcache.Wrap(rel, 0)
			if err := cc.Prime(context.Background(), attrs, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := cc.Counts(context.Background(), attrs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchPlanVsNaive measures the lattice-aware batch planner
// against naive per-request priming on a heterogeneous 8-request batch:
// mixed grouped and ungrouped queries over distinct treatments, whose
// covariate-discovery closures differ (schema minus the groupings), so the
// planner genuinely merges lattice nodes instead of deduplicating one
// closure. A fresh session handle per iteration keeps every run cold — the
// cost compared is the priming traffic, not the memo.
func BenchmarkBatchPlanVsNaive(b *testing.B) {
	tab := randomTable(b, 20000)
	attrs := tab.Columns()
	queries := make([]hypdb.Query, 0, 8)
	for i := 0; i < 8; i++ {
		q := hypdb.Query{
			Treatment: attrs[i%len(attrs)],
			Outcomes:  []string{attrs[(i+1)%len(attrs)]},
		}
		if i%2 == 0 {
			q.Groupings = []string{attrs[(i+3)%len(attrs)]}
		}
		queries = append(queries, q)
	}
	memsql.Register("bench_batchplan", tab)
	b.Cleanup(func() { memsql.Unregister("bench_batchplan") })

	run := func(b *testing.B, open func(b *testing.B) *hypdb.DB, planned bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db := open(b)
			opts := []hypdb.Option{hypdb.WithMethod(hypdb.ChiSquared), hypdb.WithSeed(7)}
			if !planned {
				opts = append(opts, hypdb.WithPlanner(false))
			}
			if _, err := db.AnalyzeAll(context.Background(), queries, opts...); err != nil {
				b.Fatal(err)
			}
			if planned && db.Stats().Planner.Plans == 0 {
				b.Fatal("planner did not run")
			}
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	openMem := func(b *testing.B) *hypdb.DB { return hypdb.Open(tab) }
	openSQL := func(b *testing.B) *hypdb.DB {
		b.Helper()
		conn, err := memsql.Open("")
		if err != nil {
			b.Fatal(err)
		}
		db, err := hypdb.OpenSQL(context.Background(), conn, "bench_batchplan")
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	b.Run("mem/naive", func(b *testing.B) { run(b, openMem, false) })
	b.Run("mem/planned", func(b *testing.B) { run(b, openMem, true) })
	b.Run("sqldb/naive", func(b *testing.B) { run(b, openSQL, false) })
	b.Run("sqldb/planned", func(b *testing.B) { run(b, openSQL, true) })
}
