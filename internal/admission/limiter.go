package admission

import (
	"sync"
	"time"
)

// DefaultMaxClients bounds the limiter's per-client bucket map; past it,
// idle (full) buckets are evicted before arbitrary ones.
const DefaultMaxClients = 4096

// Limiter is a per-client token-bucket rate limiter. Each client identity
// owns a bucket holding up to Burst tokens, refilled continuously at Rate
// tokens per second; a request takes one token or is refused with the
// time until the next token accrues.
//
// A zero or negative Rate disables limiting: Allow always admits. The
// zero value of Limiter is unusable — construct with NewLimiter.
type Limiter struct {
	rate   float64 // tokens per second
	burst  float64
	maxN   int
	clock  func() time.Time
	mu     sync.Mutex
	bkts   map[string]*bucket
	denied int64
	// deniedBy breaks denied down per client identity for metrics label
	// sets. Bounded like bkts: identities beyond maxN aggregate under
	// deniedOther so a flood of one-shot identities cannot grow the map
	// without bound.
	deniedBy map[string]int64
}

// deniedOther is the DeniedByClient key aggregating denials of identities
// beyond the limiter's client cap.
const deniedOther = "other"

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter creates a limiter admitting rate requests per second with
// bursts of up to burst, per client. burst < 1 is raised to 1 (a bucket
// that can never hold a whole token would deny everything). clock
// overrides time.Now for tests; nil uses time.Now.
func NewLimiter(rate float64, burst int, clock func() time.Time) *Limiter {
	if clock == nil {
		clock = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &Limiter{
		rate:     rate,
		burst:    b,
		maxN:     DefaultMaxClients,
		clock:    clock,
		bkts:     make(map[string]*bucket),
		deniedBy: make(map[string]int64),
	}
}

// Allow takes one token from client's bucket. When the bucket is empty it
// refuses and reports how long until one token accrues — the Retry-After
// hint. A disabled limiter (rate <= 0) always admits.
func (l *Limiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	now := l.clock()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.bkts[client]
	if b == nil {
		l.evictLocked()
		b = &bucket{tokens: l.burst, last: now}
		l.bkts[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	l.denied++
	if _, ok := l.deniedBy[client]; ok || len(l.deniedBy) < l.maxN {
		l.deniedBy[client]++
	} else {
		l.deniedBy[deniedOther]++
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Denied reports how many requests the limiter has refused.
func (l *Limiter) Denied() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.denied
}

// DeniedByClient snapshots the per-client refusal counts (a copy). Nil for
// a nil limiter or when nothing was denied yet. Identities beyond the
// client cap aggregate under "other".
func (l *Limiter) DeniedByClient() map[string]int64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.deniedBy) == 0 {
		return nil
	}
	out := make(map[string]int64, len(l.deniedBy))
	for id, n := range l.deniedBy {
		out[id] = n
	}
	return out
}

// evictLocked keeps the bucket map bounded: when adding a client would
// exceed the cap, full (idle) buckets go first; if none are full, an
// arbitrary bucket is dropped — a dropped active client merely restarts
// with a full bucket, so eviction can only err on the permissive side.
func (l *Limiter) evictLocked() {
	if len(l.bkts) < l.maxN {
		return
	}
	now := l.clock()
	for id, b := range l.bkts {
		idle := b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst
		if idle {
			delete(l.bkts, id)
			if len(l.bkts) < l.maxN {
				return
			}
		}
	}
	for id := range l.bkts {
		delete(l.bkts, id)
		return
	}
}
